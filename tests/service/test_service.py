"""GraphService behaviour: store, caching, batching, mutation, health, asyncio.

Bit-identity of repair vs. recompute lives in
``tests/properties/test_property_service_repair.py``; this module pins the
*service* semantics around it — epoch/token bookkeeping, cache hits,
coalescing, read-only results, error delivery, lifecycle, the asyncio front,
and the distributed-backend health probe.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.coarsen.mis2_agg import mis2_aggregation
from repro.graph import from_edges
from repro.mis.kk import kk_mis2
from repro.service import (
    AsyncGraphService,
    GraphService,
    ServiceClosed,
    mis_keys,
    ordered_color,
)
from repro.service.core import _Request


def _path_graph(n):
    return from_edges(n, [(i, i + 1) for i in range(n - 1)])


def _grid_graph():
    # 4x4 grid: 16 vertices, enough structure for partitioned runs.
    edges = []
    for r in range(4):
        for c in range(4):
            v = 4 * r + c
            if c < 3:
                edges.append((v, v + 1))
            if r < 3:
                edges.append((v, v + 4))
    return from_edges(16, edges)


class TestStore:
    def test_add_query_remove(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(6))
            assert svc.graphs() == ["g"]
            assert svc.epoch("g") == 0
            svc.remove_graph("g")
            assert svc.graphs() == []
            with pytest.raises(KeyError, match="no graph named"):
                svc.graph("g")

    def test_missing_graph_error_reaches_future(self):
        with GraphService() as svc:
            with pytest.raises(KeyError, match="missing"):
                svc.mis2("missing")

    def test_unknown_kind_rejected_at_submit(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(3))
            with pytest.raises(ValueError, match="unknown query kind"):
                svc.submit("g", "pagerank")

    def test_token_none_unpartitioned_fresh_when_partitioned(self):
        with GraphService() as svc:
            svc.add_graph("flat", _grid_graph())
            assert svc.token("flat") is None
            svc.add_graph("split", _grid_graph(), parts=4)
            before = svc.token("split")
            assert before is not None
            svc.add_edges("split", [(0, 15)])
            after = svc.token("split")
            assert after is not None and after != before

    def test_mutation_bumps_epoch_noop_does_not(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(5))
            assert svc.add_edges("g", [(0, 1)]) == 0  # already present
            assert svc.epoch("g") == 0
            assert svc.add_edges("g", [(0, 2)]) == 1
            assert svc.epoch("g") == 1


class TestQueries:
    def test_mis2_matches_kernel_and_is_readonly(self):
        with GraphService(parts=3) as svc:
            svc.add_graph("g", _grid_graph())
            mask = svc.mis2("g", seed=1)
            expected = kk_mis2(
                _grid_graph(), priority_scheme="fixed", seed=1
            ).in_mask
            np.testing.assert_array_equal(np.asarray(mask), expected)
            with pytest.raises(ValueError):
                mask[0] = False

    def test_color_matches_order_greedy_and_is_readonly(self):
        graph = _grid_graph()
        with GraphService() as svc:
            svc.add_graph("g", graph)
            colors = svc.color("g")
            np.testing.assert_array_equal(
                np.asarray(colors), ordered_color(graph, mis_keys(16, 0))
            )
            with pytest.raises(ValueError):
                colors[0] = 99

    def test_aggregate_matches_direct_call(self):
        graph = _grid_graph()
        with GraphService(parts=2) as svc:
            svc.add_graph("g", graph)
            agg = svc.aggregate("g", seed=2)
            direct = mis2_aggregation(graph, seed=2)
            np.testing.assert_array_equal(agg.labels, direct.labels)
            np.testing.assert_array_equal(agg.roots, direct.roots)

    def test_second_query_is_a_cache_hit(self):
        with GraphService() as svc:
            svc.add_graph("g", _grid_graph())
            first = svc.mis2("g")
            hits_before = svc.stats.cache_hits
            second = svc.mis2("g")
            assert svc.stats.cache_hits == hits_before + 1
            assert second is first  # the cached object itself, no copy

    def test_distinct_params_are_distinct_cache_slots(self):
        with GraphService() as svc:
            svc.add_graph("g", _grid_graph())
            svc.mis2("g", seed=0)
            full_before = svc.stats.full_recomputes
            svc.mis2("g", seed=1)
            assert svc.stats.full_recomputes == full_before + 1


class TestBatching:
    def test_drain_coalesces_identical_requests(self):
        with GraphService() as svc:
            svc.add_graph("g", _grid_graph())
            requests = [
                _Request("g", "mis2", (("seed", 0),), Future()) for _ in range(8)
            ]
            svc._drain(requests)
            assert svc.stats.coalesced == 7
            values = [r.future.result(timeout=5) for r in requests]
            assert all(v is values[0] for v in values)

    def test_drain_delivers_failure_to_every_member(self):
        with GraphService() as svc:
            requests = [
                _Request("ghost", "mis2", (("seed", 0),), Future())
                for _ in range(3)
            ]
            svc._drain(requests)
            for request in requests:
                with pytest.raises(KeyError):
                    request.future.result(timeout=5)

    def test_concurrent_submitters_agree(self):
        with GraphService(backend="threaded", parts=2) as svc:
            svc.add_graph("g", _grid_graph())
            futures = [svc.submit("g", "mis2", seed=0) for _ in range(16)]
            results = [f.result(timeout=30) for f in futures]
            expected = kk_mis2(_grid_graph(), priority_scheme="fixed").in_mask
            for result in results:
                np.testing.assert_array_equal(np.asarray(result), expected)


class TestMutations:
    def test_add_edges_validates_and_canonicalises(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(5))
            with pytest.raises(ValueError, match="out of range"):
                svc.add_edges("g", [(0, 9)])
            # Self-loops and duplicates collapse away.
            assert svc.add_edges("g", [(2, 2), (0, 3), (3, 0)]) == 1
            assert svc.graph("g").num_edges == _path_graph(5).num_edges + 1

    def test_remove_edges_counts_only_existing(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(5))
            assert svc.remove_edges("g", [(0, 1), (0, 4)]) == 1
            assert svc.epoch("g") == 1

    def test_add_vertices_appends_isolated_ids(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(4))
            assert svc.add_vertices("g", 2) == (4, 6)
            graph = svc.graph("g")
            assert graph.num_vertices == 6
            assert graph.rowmap[-1] == graph.rowmap[4]  # new vertices isolated

    def test_append_across_id_width_boundary_is_structural(self):
        # b = ceil(log2(n + 2)) grows from 3 to 4 between n=6 and n=7.
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(6))
            svc.mis2("g")
            svc.add_vertices("g", 1)
            assert svc.stats.structural_mutations == 1
            full_before = svc.stats.full_recomputes
            mask = svc.mis2("g")
            assert svc.stats.full_recomputes == full_before + 1
            expected = kk_mis2(svc.graph("g"), priority_scheme="fixed").in_mask
            np.testing.assert_array_equal(np.asarray(mask), expected)

    def test_remove_vertices_renumbers_and_recomputes(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(6))
            svc.mis2("g")
            assert svc.remove_vertices("g", [0, 3]) == 2
            assert svc.stats.structural_mutations == 1
            assert svc.graph("g").num_vertices == 4
            mask = svc.mis2("g")
            expected = kk_mis2(svc.graph("g"), priority_scheme="fixed").in_mask
            np.testing.assert_array_equal(np.asarray(mask), expected)

    def test_mutation_invalidates_aggregate_cache(self):
        with GraphService() as svc:
            svc.add_graph("g", _grid_graph())
            svc.aggregate("g")
            full_before = svc.stats.full_recomputes
            svc.add_edges("g", [(0, 15)])
            agg = svc.aggregate("g")
            assert svc.stats.full_recomputes == full_before + 1
            direct = mis2_aggregation(svc.graph("g"))
            np.testing.assert_array_equal(agg.labels, direct.labels)


class TestRepairPath:
    def test_local_edge_insert_repairs_instead_of_recomputing(self):
        with GraphService(repair_crossover=1.0) as svc:
            svc.add_graph("g", _path_graph(12))
            svc.mis2("g")
            svc.color("g")
            full_before = svc.stats.full_recomputes
            svc.add_edges("g", [(0, 2)])
            mask = svc.mis2("g")
            colors = svc.color("g")
            assert svc.stats.repairs == 2
            assert svc.stats.repair_touched > 0
            assert svc.stats.full_recomputes == full_before
            graph = svc.graph("g")
            np.testing.assert_array_equal(
                np.asarray(mask),
                kk_mis2(graph, priority_scheme="fixed").in_mask,
            )
            np.testing.assert_array_equal(
                np.asarray(colors), ordered_color(graph, mis_keys(12, 0))
            )

    def test_wide_frontier_falls_back_past_crossover(self):
        # Near-complete graph on 40 vertices: the dirty neighbourhood of any
        # edge insert is all 40 vertices, past the budget of max(32, 0).
        n = 40
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        missing = edges.pop(0)
        with GraphService(repair_crossover=0.0) as svc:
            svc.add_graph("g", from_edges(n, edges))
            svc.mis2("g")
            svc.add_edges("g", [missing])
            mask = svc.mis2("g")
            assert svc.stats.repair_fallbacks >= 1
            assert svc.stats.repairs == 0
            np.testing.assert_array_equal(
                np.asarray(mask),
                kk_mis2(svc.graph("g"), priority_scheme="fixed").in_mask,
            )


class TestLifecycleAndHealth:
    def test_health_reports_store_and_backend(self):
        with GraphService(parts=2) as svc:
            svc.add_graph("g", _grid_graph())
            svc.add_edges("g", [(0, 15)])
            report = svc.health()
            assert report["healthy"] is True
            assert report["backend"] == svc._backend.name
            info = report["graphs"]["g"]
            assert info["vertices"] == 16
            assert info["epoch"] == 1
            assert info["parts"] == 2
            assert info["token"] == svc.token("g")

    def test_closed_service_rejects_work_and_reports_unhealthy(self):
        svc = GraphService()
        svc.add_graph("g", _path_graph(3))
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(ServiceClosed):
            svc.submit("g", "mis2")
        with pytest.raises(ServiceClosed):
            svc.add_graph("h", _path_graph(2))
        report = svc.health()
        assert report["closed"] is True
        assert report["healthy"] is False

    def test_stats_to_dict_round_trips(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(4))
            svc.mis2("g")
            stats = svc.stats.to_dict()
            assert stats["queries"] == 1
            assert stats["full_recomputes"] == 1
            assert set(stats) == set(svc.stats.__dict__)


class TestAsyncFront:
    def test_gathered_queries_and_mutations(self):
        async def scenario():
            async with AsyncGraphService(backend="threaded", parts=2) as svc:
                await svc.add_graph("g", _grid_graph())
                masks = await asyncio.gather(*[svc.mis2("g") for _ in range(8)])
                await svc.add_edges("g", [(0, 15)])
                repaired = await svc.mis2("g")
                colors = await svc.color("g")
                report = await svc.health()
                return masks, repaired, colors, report, svc.service.graph("g")

        masks, repaired, colors, report, graph = asyncio.run(scenario())
        base = kk_mis2(_grid_graph(), priority_scheme="fixed").in_mask
        for mask in masks:
            np.testing.assert_array_equal(np.asarray(mask), base)
        np.testing.assert_array_equal(
            np.asarray(repaired), kk_mis2(graph, priority_scheme="fixed").in_mask
        )
        np.testing.assert_array_equal(
            np.asarray(colors), ordered_color(graph, mis_keys(16, 0))
        )
        assert report["healthy"] is True

    def test_wrapping_existing_service_shares_store_and_never_closes_it(self):
        with GraphService() as svc:
            svc.add_graph("g", _path_graph(5))

            async def scenario():
                front = AsyncGraphService(service=svc)
                assert front.graphs() == ["g"]
                mask = await front.mis2("g")
                await front.close()  # must NOT close the wrapped service
                return mask

            mask = asyncio.run(scenario())
            assert not svc._closed
            np.testing.assert_array_equal(
                np.asarray(mask),
                kk_mis2(_path_graph(5), priority_scheme="fixed").in_mask,
            )

    def test_constructor_rejects_service_plus_kwargs(self):
        with GraphService() as svc:
            with pytest.raises(ValueError, match="either"):
                AsyncGraphService(service=svc, parts=2)


class TestDistributedService:
    def test_resident_distributed_queries_mutations_and_rank_health(self):
        with GraphService(backend="distributed", parts=2) as svc:
            svc.add_graph("g", _grid_graph())
            mask = svc.mis2("g")
            np.testing.assert_array_equal(
                np.asarray(mask),
                kk_mis2(_grid_graph(), priority_scheme="fixed").in_mask,
            )
            svc.add_edges("g", [(0, 15)])
            repaired = svc.mis2("g")
            np.testing.assert_array_equal(
                np.asarray(repaired),
                kk_mis2(svc.graph("g"), priority_scheme="fixed").in_mask,
            )
            report = svc.health(timeout=10.0)
            assert report["healthy"] is True
            assert report["ranks"] and all(report["ranks"].values())

"""Test package (gives every test module a unique import path)."""

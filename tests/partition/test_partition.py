"""Tests for the multilevel graph-partitioning extension."""

import numpy as np
import pytest

from repro.graph import cycle_graph, empty_graph, from_edges, grid2d, laplace3d, path_graph
from repro.partition import (
    PartitionResult,
    bisect_graph,
    edge_cut,
    heavy_edge_matching,
    is_valid_partition,
    multilevel_bisection,
    multilevel_kway,
    partition_balance,
    refine_bisection,
)


class TestMetrics:
    def test_edge_cut_counts_crossing_edges(self):
        g = path_graph(4)
        assert edge_cut(g, np.array([0, 0, 1, 1])) == 1
        assert edge_cut(g, np.array([0, 1, 0, 1])) == 3
        assert edge_cut(g, np.array([0, 0, 0, 0])) == 0

    def test_edge_cut_validates_length(self):
        with pytest.raises(ValueError):
            edge_cut(path_graph(3), np.array([0, 1]))

    def test_balance(self):
        assert partition_balance(np.array([0, 0, 1, 1]), 2) == pytest.approx(1.0)
        assert partition_balance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)
        assert partition_balance(np.zeros(0, dtype=np.int64), 2) == 1.0

    def test_validity(self):
        g = path_graph(3)
        assert is_valid_partition(g, np.array([0, 1, 0]), 2)
        assert not is_valid_partition(g, np.array([0, 2, 0]), 2)
        assert not is_valid_partition(g, np.array([0, 1]), 2)


class TestHeavyEdgeMatching:
    def test_aggregates_have_size_at_most_two(self):
        g = grid2d(10, 10)
        agg = heavy_edge_matching(g)
        assert agg.is_complete()
        assert agg.sizes().max() <= 2
        # Matching roughly halves the graph.
        assert g.num_vertices / 2 <= agg.num_aggregates <= g.num_vertices * 0.75

    def test_deterministic(self):
        g = grid2d(8, 8)
        assert np.array_equal(heavy_edge_matching(g).labels, heavy_edge_matching(g).labels)

    def test_empty_graph(self):
        assert heavy_edge_matching(empty_graph(0)).num_aggregates == 0


class TestBisection:
    def test_bisection_is_balanced_and_valid(self):
        g = grid2d(20, 20)
        parts = bisect_graph(g)
        assert is_valid_partition(g, parts, 2)
        assert partition_balance(parts, 2) <= 1.15
        # A balanced bisection of a 20x20 grid should cut far fewer edges than a
        # random assignment (which cuts ~half of them).
        assert edge_cut(g, parts) < g.num_edges / 4

    def test_single_vertex_and_empty(self):
        assert bisect_graph(empty_graph(1)).tolist() == [0]
        assert bisect_graph(empty_graph(0)).size == 0

    def test_disconnected_graph_still_balanced(self):
        g = from_edges(10, [(0, 1), (1, 2), (3, 4), (5, 6), (7, 8)])
        parts = bisect_graph(g)
        assert is_valid_partition(g, parts, 2)
        assert partition_balance(parts, 2) <= 1.3

    def test_refinement_never_increases_cut(self):
        g = grid2d(15, 15)
        rng = np.random.default_rng(0)
        parts = rng.integers(0, 2, size=g.num_vertices)
        refined = refine_bisection(g, parts, balance_tolerance=1.3, passes=5)
        assert edge_cut(g, refined) <= edge_cut(g, parts)
        assert is_valid_partition(g, refined, 2)


class TestMultilevel:
    def test_multilevel_bisection_on_grid(self):
        g = grid2d(32, 32)
        result = multilevel_bisection(g)
        assert isinstance(result, PartitionResult)
        assert is_valid_partition(g, result.parts, 2)
        assert result.balance <= 1.15
        # An ideal bisection of a 32x32 grid cuts 32 edges; allow generous slack.
        assert result.cut <= 4 * 32
        assert result.level_sizes[0] == g.num_vertices
        assert len(result.level_sizes) >= 2

    def test_mis2_coarsening_competitive_with_hem(self):
        # Gilbert et al. (cited by the paper) found MIS-2 coarsening outperforms HEM
        # on regular graphs; here we only require it to be competitive.
        g = grid2d(30, 30)
        mis2_cut = multilevel_bisection(g).cut
        hem_cut = multilevel_bisection(g, aggregation_fn=heavy_edge_matching).cut
        assert mis2_cut <= 1.5 * hem_cut

    def test_multilevel_on_3d_graph(self):
        g = laplace3d(10, 10, 10)
        result = multilevel_bisection(g)
        assert is_valid_partition(g, result.parts, 2)
        assert result.cut < g.num_edges / 4

    def test_kway_partitioning(self):
        g = grid2d(24, 24)
        result = multilevel_kway(g, 4)
        assert is_valid_partition(g, result.parts, 4)
        assert result.num_parts == 4
        sizes = np.bincount(result.parts, minlength=4)
        assert sizes.min() > 0
        assert result.balance <= 1.6
        assert result.cut < g.num_edges / 3

    def test_kway_validation_and_trivial_cases(self):
        g = grid2d(6, 6)
        with pytest.raises(ValueError):
            multilevel_kway(g, 3)
        single = multilevel_kway(g, 1)
        assert single.cut == 0
        assert np.all(single.parts == 0)

    def test_deterministic(self):
        g = grid2d(20, 20)
        a = multilevel_bisection(g)
        b = multilevel_bisection(g)
        assert np.array_equal(a.parts, b.parts)

"""Edge-case tests for :mod:`repro.partition.metrics`.

Covers the degenerate inputs the partition-parallel layer now feeds these
metrics: empty graphs, singletons, disconnected components, empty parts and
malformed label arrays.
"""

import numpy as np
import pytest

from repro.graph import empty_graph, from_edges, path_graph, star_graph
from repro.partition import edge_cut, is_valid_partition, partition_balance


class TestIsValidPartition:
    def test_empty_graph_is_valid(self):
        assert is_valid_partition(empty_graph(0), np.zeros(0, dtype=np.int64), 1)
        assert is_valid_partition(empty_graph(0), np.zeros(0, dtype=np.int64), 4)

    def test_singleton_graph(self):
        g = empty_graph(1)
        assert is_valid_partition(g, np.array([0]), 1)
        assert is_valid_partition(g, np.array([2]), 3)
        assert not is_valid_partition(g, np.array([3]), 3)
        assert not is_valid_partition(g, np.array([-1]), 3)

    def test_wrong_shape_is_invalid(self):
        g = path_graph(3)
        assert not is_valid_partition(g, np.array([0, 1]), 2)
        assert not is_valid_partition(g, np.array([[0], [1], [0]]), 2)
        assert not is_valid_partition(g, np.array([0, 1, 0, 1]), 2)

    def test_empty_parts_are_allowed(self):
        # Labels never touching part 1 of 3 are still a valid 3-way partition.
        g = path_graph(4)
        assert is_valid_partition(g, np.array([0, 0, 2, 2]), 3)


class TestEdgeCut:
    def test_empty_graph(self):
        assert edge_cut(empty_graph(0), np.zeros(0, dtype=np.int64)) == 0

    def test_singleton_graph(self):
        assert edge_cut(empty_graph(1), np.array([0])) == 0

    def test_isolated_vertices_have_no_cut(self):
        g = empty_graph(5)
        assert edge_cut(g, np.array([0, 1, 2, 3, 4])) == 0

    def test_disconnected_components_split_cleanly(self):
        # Triangle + path, split along the component boundary: zero cut.
        g = from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6)])
        assert edge_cut(g, np.array([0, 0, 0, 1, 1, 1, 1])) == 0
        # Splitting inside the path cuts exactly one undirected edge.
        assert edge_cut(g, np.array([0, 0, 0, 1, 1, 2, 2])) == 1

    def test_star_center_isolated_cuts_every_edge(self):
        g = star_graph(6)  # center 0 plus 6 leaves
        parts = np.zeros(7, dtype=np.int64)
        parts[0] = 1
        assert edge_cut(g, parts) == 6

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            edge_cut(path_graph(3), np.array([0, 1]))

    def test_empty_part_does_not_change_cut(self):
        g = path_graph(4)
        assert edge_cut(g, np.array([0, 0, 2, 2])) == 1


class TestPartitionBalance:
    def test_empty_labels(self):
        assert partition_balance(np.zeros(0, dtype=np.int64), 2) == 1.0

    def test_singleton(self):
        assert partition_balance(np.array([0]), 1) == pytest.approx(1.0)

    def test_empty_part_inflates_imbalance(self):
        # Two vertices both in part 0 of a 2-way split: max 2 vs ideal 1.
        assert partition_balance(np.array([0, 0]), 2) == pytest.approx(2.0)

    def test_trailing_empty_parts_counted(self):
        # bincount must pad to num_parts even when high part ids never occur.
        assert partition_balance(np.array([0, 1]), 4) == pytest.approx(2.0)

    def test_perfectly_balanced(self):
        assert partition_balance(np.array([0, 1, 2, 0, 1, 2]), 3) == pytest.approx(1.0)

    def test_skewed(self):
        assert partition_balance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)

"""Tests for point multicolor Gauss-Seidel (the Table VI baseline)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.coloring import is_valid_coloring
from repro.graph import laplace2d, laplace3d_matrix
from repro.gs import MulticolorGaussSeidel
from repro.solvers import gmres, pcg


@pytest.fixture
def system():
    A = laplace3d_matrix(8, 8, 8)
    rng = np.random.default_rng(4)
    x_exact = rng.random(A.shape[0])
    return A, x_exact, A @ x_exact


class TestSetup:
    def test_coloring_is_valid(self, system):
        A, _, _ = system
        gs = MulticolorGaussSeidel(A)
        from repro.graph import from_scipy

        assert is_valid_coloring(from_scipy(A), gs.coloring.colors, distance=1)
        assert gs.num_colors >= 2

    def test_color_sets_partition_rows(self, system):
        A, _, _ = system
        gs = MulticolorGaussSeidel(A)
        combined = np.sort(np.concatenate(gs.color_sets))
        assert np.array_equal(combined, np.arange(A.shape[0]))

    def test_setup_time_recorded(self, system):
        A, _, _ = system
        assert MulticolorGaussSeidel(A).setup_seconds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MulticolorGaussSeidel(sp.csr_matrix(np.ones((2, 3))))
        with pytest.raises(ValueError):
            MulticolorGaussSeidel(sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]])))


class TestApply:
    def test_sweeps_reduce_residual(self, system):
        A, _, b = system
        gs = MulticolorGaussSeidel(A, sweeps=1, symmetric=True)
        x = gs.apply(b)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)
        x2 = gs.apply(b, x)
        assert np.linalg.norm(b - A @ x2) < np.linalg.norm(b - A @ x)

    def test_exact_solution_fixed_point(self, system):
        A, x_exact, b = system
        gs = MulticolorGaussSeidel(A)
        assert np.allclose(gs.apply(b, x_exact.copy()), x_exact, atol=1e-10)

    def test_forward_only_variant(self, system):
        A, _, b = system
        fwd = MulticolorGaussSeidel(A, symmetric=False).apply(b)
        sym = MulticolorGaussSeidel(A, symmetric=True).apply(b)
        assert not np.allclose(fwd, sym)


class TestAsPreconditioner:
    def test_accelerates_gmres(self, system):
        A, _, b = system
        plain = gmres(A, b, tol=1e-8, maxiter=800)
        gs = MulticolorGaussSeidel(A)
        pre = gmres(A, b, M=gs.as_preconditioner(), tol=1e-8, maxiter=800)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_symmetric_variant_works_with_cg(self, system):
        A, _, b = system
        gs = MulticolorGaussSeidel(A, symmetric=True)
        result = pcg(A, b, M=gs.as_preconditioner(), tol=1e-10, maxiter=500)
        assert result.converged

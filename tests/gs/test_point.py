"""Tests for classical (sequential) Gauss-Seidel."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import laplace2d
from repro.gs import PointGaussSeidel, gauss_seidel_sweep, symmetric_gauss_seidel_sweep
from repro.solvers import pcg


@pytest.fixture
def system():
    A = laplace2d(10, 10)
    rng = np.random.default_rng(1)
    x_exact = rng.random(A.shape[0])
    return A, x_exact, A @ x_exact


def _reference_forward_sweep(A, b, x):
    dense = sp.csr_matrix(A).toarray()
    x = x.copy()
    for i in range(dense.shape[0]):
        diag = dense[i, i]
        total = dense[i] @ x - diag * x[i]
        x[i] = (b[i] - total) / diag
    return x


class TestSweeps:
    def test_forward_sweep_matches_row_by_row_reference(self, system):
        A, _, b = system
        x0 = np.zeros(A.shape[0])
        fast = gauss_seidel_sweep(A, b, x0)
        slow = _reference_forward_sweep(A, b, x0)
        assert np.allclose(fast, slow)

    def test_backward_sweep_differs_from_forward(self, system):
        A, _, b = system
        f = gauss_seidel_sweep(A, b)
        bwd = gauss_seidel_sweep(A, b, backward=True)
        assert not np.allclose(f, bwd)

    def test_sweeps_reduce_residual_monotonically(self, system):
        A, _, b = system
        x = np.zeros(A.shape[0])
        prev = np.linalg.norm(b)
        for _ in range(5):
            x = symmetric_gauss_seidel_sweep(A, b, x)
            res = np.linalg.norm(b - A @ x)
            assert res < prev
            prev = res

    def test_exact_solution_is_fixed_point(self, system):
        A, x_exact, b = system
        out = symmetric_gauss_seidel_sweep(A, b, x_exact.copy())
        assert np.allclose(out, x_exact, atol=1e-10)


class TestPreconditioner:
    def test_sgs_preconditioner_accelerates_cg(self, system):
        A, _, b = system
        plain = pcg(A, b, tol=1e-10, maxiter=1000)
        gs = PointGaussSeidel(A, sweeps=1, symmetric=True)
        pre = pcg(A, b, M=gs.as_preconditioner(), tol=1e-10, maxiter=1000)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_multiple_sweeps(self, system):
        A, _, b = system
        one = PointGaussSeidel(A, sweeps=1).apply(b)
        two = PointGaussSeidel(A, sweeps=2).apply(b)
        assert np.linalg.norm(b - A @ two) < np.linalg.norm(b - A @ one)

    def test_zero_diagonal_rejected(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            PointGaussSeidel(A)

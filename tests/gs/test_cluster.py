"""Tests for cluster multicolor Gauss-Seidel (Algorithm 4)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.coarsen import mis2_basic_aggregation
from repro.coloring import is_valid_coloring
from repro.graph import from_scipy, laplace2d, laplace3d_matrix
from repro.gs import ClusterMulticolorGaussSeidel, MulticolorGaussSeidel
from repro.solvers import gmres


@pytest.fixture
def system():
    A = laplace3d_matrix(8, 8, 8)
    rng = np.random.default_rng(5)
    x_exact = rng.random(A.shape[0])
    return A, x_exact, A @ x_exact


class TestSetup:
    def test_coarse_graph_coloring_valid(self, system):
        A, _, _ = system
        gs = ClusterMulticolorGaussSeidel(A)
        assert is_valid_coloring(gs.coarse, gs.coloring.colors, distance=1)
        assert gs.aggregation.is_complete()
        assert gs.coarse.num_vertices == gs.aggregation.num_aggregates

    def test_cluster_setup_colors_smaller_graph_than_point(self, system):
        # The core setup-cost argument of Table VI: the cluster method colors the
        # coarsened graph, which is an order of magnitude smaller.
        A, _, _ = system
        cluster = ClusterMulticolorGaussSeidel(A)
        assert cluster.coarse.num_vertices < A.shape[0] / 3

    def test_alternate_aggregation(self, system):
        A, _, b = system
        gs = ClusterMulticolorGaussSeidel(A, aggregation_fn=mis2_basic_aggregation)
        x = gs.apply(b)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterMulticolorGaussSeidel(sp.csr_matrix(np.ones((2, 3))))
        with pytest.raises(ValueError):
            ClusterMulticolorGaussSeidel(sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]])))


class TestApplySemantics:
    def test_forward_sweep_matches_sequential_reference(self):
        # The lockstep (color, position-in-cluster) schedule must reproduce exactly
        # the sequential within-cluster Gauss-Seidel order of Algorithm 4.
        A = laplace2d(9, 9).tocsr()
        b = np.linspace(0.5, 1.5, A.shape[0])
        gs = ClusterMulticolorGaussSeidel(A, sweeps=1, symmetric=False)
        fast = gs.apply(b)
        x = np.zeros(A.shape[0])
        d = A.diagonal()
        labels = gs.aggregation.labels
        for color in range(gs.num_colors):
            for agg in np.nonzero(gs.coloring.colors == color)[0]:
                for i in np.sort(np.nonzero(labels == agg)[0]):
                    row_dot = float((A[i] @ x)[0])
                    x[i] = (b[i] - row_dot + d[i] * x[i]) / d[i]
        assert np.allclose(fast, x)

    def test_sweeps_reduce_residual(self, system):
        A, _, b = system
        gs = ClusterMulticolorGaussSeidel(A)
        x = gs.apply(b)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)
        x2 = gs.apply(b, x)
        assert np.linalg.norm(b - A @ x2) < np.linalg.norm(b - A @ x)

    def test_exact_solution_fixed_point(self, system):
        A, x_exact, b = system
        gs = ClusterMulticolorGaussSeidel(A)
        assert np.allclose(gs.apply(b, x_exact.copy()), x_exact, atol=1e-10)

    def test_deterministic(self, system):
        A, _, b = system
        a = ClusterMulticolorGaussSeidel(A).apply(b)
        c = ClusterMulticolorGaussSeidel(A).apply(b)
        assert np.array_equal(a, c)


class TestAsPreconditioner:
    def test_accelerates_gmres(self, system):
        A, _, b = system
        plain = gmres(A, b, tol=1e-8, maxiter=800)
        gs = ClusterMulticolorGaussSeidel(A)
        pre = gmres(A, b, M=gs.as_preconditioner(), tol=1e-8, maxiter=800)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_iteration_count_comparable_to_point_method(self, system):
        # Table VI: the cluster method's iteration counts are in the same ballpark as
        # the point method's (the paper reports ~5% fewer on average; this
        # reproduction's point baseline uses a near-optimal 2-coloring on structured
        # grids, so we only assert the counts are comparable).
        A, _, b = system
        point = MulticolorGaussSeidel(A)
        cluster = ClusterMulticolorGaussSeidel(A)
        point_result = gmres(A, b, M=point.as_preconditioner(), tol=1e-8, maxiter=800)
        cluster_result = gmres(A, b, M=cluster.as_preconditioner(), tol=1e-8, maxiter=800)
        assert cluster_result.converged and point_result.converged
        assert cluster_result.iterations <= 2 * point_result.iterations

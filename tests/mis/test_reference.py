"""Tests for the loop-based reference implementation and its equivalence to the
vectorised Algorithm 1 kernel."""

import numpy as np
import pytest

from repro.graph import cycle_graph, grid2d, path_graph, random_gnp, star_graph
from repro.mis import kk_mis2, mis2_reference, verify_mis


class TestReferenceCorrectness:
    def test_valid_on_small_graphs(self, any_small_graph):
        if any_small_graph.num_vertices > 200:
            pytest.skip("reference implementation is intentionally slow")
        result = mis2_reference(any_small_graph)
        assert verify_mis(any_small_graph, result.in_set, k=2)

    def test_phase_callback_invoked(self, fig1_graph):
        phases = []
        mis2_reference(fig1_graph, phase_callback=lambda p, i, T, M: phases.append((p, i)))
        assert phases[0] == ("refresh_row", 0)
        assert phases[1] == ("refresh_column", 0)
        assert phases[2] == ("decide", 0)
        # Three callbacks per iteration.
        assert len(phases) % 3 == 0


class TestEquivalenceWithVectorisedKernel:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(25),
            lambda: cycle_graph(30),
            lambda: star_graph(12),
            lambda: grid2d(8, 9),
            lambda: random_gnp(60, 0.07, seed=5),
            lambda: random_gnp(80, 0.03, seed=9),
        ],
    )
    def test_bitwise_identical_results(self, graph_factory):
        graph = graph_factory()
        fast = kk_mis2(graph)
        slow = mis2_reference(graph)
        assert np.array_equal(fast.in_set, slow.in_set)
        assert fast.iterations == slow.iterations

    @pytest.mark.parametrize("scheme", ["fixed", "xor", "xorstar"])
    def test_equivalence_across_priority_schemes(self, scheme):
        graph = grid2d(9, 9)
        fast = kk_mis2(graph, priority_scheme=scheme)
        slow = mis2_reference(graph, priority_scheme=scheme)
        assert np.array_equal(fast.in_set, slow.in_set)
        assert fast.iterations == slow.iterations

    def test_equivalence_with_32_bit_words(self):
        graph = grid2d(7, 11)
        fast = kk_mis2(graph, word_bits=32)
        slow = mis2_reference(graph, word_bits=32)
        assert np.array_equal(fast.in_set, slow.in_set)

"""Tests for the Fig. 1 iteration tracer."""

import numpy as np

from repro.graph import paper_example_graph, path_graph
from repro.mis import IterationSnapshot, kk_mis2, trace_mis2


class TestTrace:
    def test_snapshots_cover_every_phase(self):
        g = paper_example_graph()
        result, snapshots = trace_mis2(g)
        assert len(snapshots) == 3 * result.iterations
        phases = [s.phase for s in snapshots[:3]]
        assert phases == ["refresh_row", "refresh_column", "decide"]

    def test_trace_matches_vectorised_result(self):
        g = paper_example_graph()
        result, _ = trace_mis2(g)
        fast = kk_mis2(g)
        assert np.array_equal(result.in_set, fast.in_set)

    def test_statuses_progress_monotonically(self):
        g = path_graph(12)
        result, snapshots = trace_mis2(g)
        decided_counts = [
            sum(1 for s in snap.statuses if s != "undecided")
            for snap in snapshots
            if snap.phase == "decide"
        ]
        assert all(b >= a for a, b in zip(decided_counts, decided_counts[1:]))
        assert decided_counts[-1] == g.num_vertices

    def test_final_snapshot_in_vertices_match_result(self):
        g = paper_example_graph()
        result, snapshots = trace_mis2(g)
        final = snapshots[-1]
        in_vertices = [v for v, s in enumerate(final.statuses) if s == "in"]
        assert in_vertices == sorted(result.in_set.tolist())

    def test_describe_mentions_every_vertex(self):
        g = paper_example_graph()
        _, snapshots = trace_mis2(g)
        text = snapshots[0].describe()
        for v in range(g.num_vertices):
            assert f"vertex {v}:" in text

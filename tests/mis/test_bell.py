"""Tests for the Bell/Dalton/Olson MIS-k baseline."""

import numpy as np
import pytest

from repro.graph import complete_graph, cycle_graph, empty_graph, path_graph, star_graph
from repro.mis import bell_mis, kk_mis2, verify_mis


class TestCorrectness:
    def test_valid_mis2_on_every_small_graph(self, any_small_graph):
        result = bell_mis(any_small_graph, k=2)
        assert verify_mis(any_small_graph, result.in_set, k=2)

    def test_valid_mis1(self, any_small_graph):
        result = bell_mis(any_small_graph, k=1)
        assert verify_mis(any_small_graph, result.in_set, k=1)

    def test_valid_mis3_on_path(self):
        g = path_graph(30)
        result = bell_mis(g, k=3)
        chosen = np.sort(result.in_set)
        assert np.all(np.diff(chosen) >= 4)
        assert verify_mis(g, chosen, k=3)

    def test_valid_mis4_on_cycle(self):
        g = cycle_graph(23)
        result = bell_mis(g, k=4)
        assert verify_mis(g, result.in_set, k=4)

    def test_structured_graph(self, small_laplace3d):
        result = bell_mis(small_laplace3d, k=2)
        assert verify_mis(small_laplace3d, result.in_set, k=2)

    def test_empty_graph(self):
        assert bell_mis(empty_graph(0)).size == 0

    def test_complete_graph(self):
        assert bell_mis(complete_graph(6), k=2).size == 1

    def test_k_validation(self, small_laplace3d):
        with pytest.raises(ValueError):
            bell_mis(small_laplace3d, k=0)


class TestComparisonWithKK:
    def test_similar_set_size(self, small_laplace3d):
        # Table IV: CUSP/ViennaCL and Kokkos Kernels produce very similar MIS-2 sizes.
        kk = kk_mis2(small_laplace3d)
        bell = bell_mis(small_laplace3d, k=2)
        assert abs(kk.size - bell.size) / kk.size < 0.15

    def test_bell_moves_more_memory(self, small_laplace3d):
        # No worklists + 3-word tuples means the baseline moves much more data,
        # which is the basis of the paper's Fig. 2 speedups.
        kk = kk_mis2(small_laplace3d)
        bell = bell_mis(small_laplace3d, k=2)
        assert bell.traffic.total_bytes > 2 * kk.traffic.total_bytes

    def test_fixed_priorities_recorded(self, small_laplace3d):
        result = bell_mis(small_laplace3d)
        assert result.config.algorithm == "bell"
        assert result.config.priority_scheme == "fixed"
        assert result.config.packed_tuples is False
        assert result.config.use_worklists is False


class TestDeterminism:
    def test_repeated_runs_identical(self, small_laplace3d):
        a = bell_mis(small_laplace3d, k=2, seed=3)
        b = bell_mis(small_laplace3d, k=2, seed=3)
        assert np.array_equal(a.in_set, b.in_set)
        assert a.iterations == b.iterations

    def test_seed_changes_set(self, small_laplace3d):
        a = bell_mis(small_laplace3d, k=2, seed=0)
        b = bell_mis(small_laplace3d, k=2, seed=1)
        assert not np.array_equal(a.in_set, b.in_set)

    def test_refreshed_priority_variant(self, small_laplace3d):
        result = bell_mis(small_laplace3d, k=2, priority_scheme="xorstar")
        assert verify_mis(small_laplace3d, result.in_set, k=2)

"""Tests for Luby's MIS-1 algorithm."""

import numpy as np
import pytest

from repro.graph import complete_graph, cycle_graph, empty_graph, path_graph, star_graph
from repro.mis import luby_mis1, verify_mis


class TestCorrectness:
    def test_valid_mis1_on_every_small_graph(self, any_small_graph):
        result = luby_mis1(any_small_graph)
        assert verify_mis(any_small_graph, result.in_set, k=1)

    def test_path_alternation_is_maximal(self):
        result = luby_mis1(path_graph(12))
        assert verify_mis(path_graph(12), result.in_set, k=1)
        # An MIS-1 of a path with 12 vertices has at least 4 members.
        assert result.size >= 4

    def test_star_graph(self):
        result = luby_mis1(star_graph(9))
        # Either the hub alone or all the leaves.
        assert result.size in (1, 9)
        assert verify_mis(star_graph(9), result.in_set, k=1)

    def test_complete_graph(self):
        assert luby_mis1(complete_graph(8)).size == 1

    def test_empty_and_isolated(self):
        assert luby_mis1(empty_graph(0)).size == 0
        assert luby_mis1(empty_graph(4)).size == 4

    def test_structured_graph(self, small_laplace3d):
        result = luby_mis1(small_laplace3d)
        assert verify_mis(small_laplace3d, result.in_set, k=1)
        # MIS-1 of the 7-point stencil covers a sizable fraction of the vertices.
        assert result.size > small_laplace3d.num_vertices / 8


class TestSchemesAndDeterminism:
    def test_deterministic(self, small_laplace3d):
        a = luby_mis1(small_laplace3d)
        b = luby_mis1(small_laplace3d)
        assert np.array_equal(a.in_set, b.in_set)

    def test_fixed_priorities_greedy_variant(self, small_laplace3d):
        result = luby_mis1(small_laplace3d, priority_scheme="fixed", seed=4)
        assert verify_mis(small_laplace3d, result.in_set, k=1)

    def test_iteration_count_logarithmic(self):
        result = luby_mis1(cycle_graph(2000))
        assert result.iterations <= 30

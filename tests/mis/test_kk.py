"""Tests for Algorithm 1 (kk_mis2), the paper's core contribution."""

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid2d,
    laplace3d,
    path_graph,
    star_graph,
)
from repro.hashing import PriorityScheme
from repro.mis import kk_mis2, verify_mis


class TestCorrectness:
    def test_valid_mis2_on_every_small_graph(self, any_small_graph):
        result = kk_mis2(any_small_graph)
        assert verify_mis(any_small_graph, result.in_set, k=2)

    def test_valid_on_structured_graph(self, small_laplace3d):
        result = kk_mis2(small_laplace3d)
        assert verify_mis(small_laplace3d, result.in_set, k=2)
        # The 7-point Laplace MIS-2 is roughly 9% of the vertices in the paper.
        fraction = result.size / small_laplace3d.num_vertices
        assert 0.04 <= fraction <= 0.2

    def test_empty_graph(self):
        result = kk_mis2(empty_graph(0))
        assert result.size == 0
        assert result.iterations == 0

    def test_isolated_vertices_all_in(self):
        result = kk_mis2(empty_graph(5))
        assert result.size == 5

    def test_single_vertex(self):
        result = kk_mis2(empty_graph(1))
        assert result.in_set.tolist() == [0]

    def test_complete_graph_has_one_vertex(self):
        result = kk_mis2(complete_graph(7))
        assert result.size == 1

    def test_star_graph_center_or_single_leaf(self):
        # Any two leaves are at distance 2, so the MIS-2 has exactly one vertex.
        result = kk_mis2(star_graph(10))
        assert result.size == 1

    def test_path_graph_spacing(self):
        result = kk_mis2(path_graph(20))
        chosen = np.sort(result.in_set)
        assert np.all(np.diff(chosen) >= 3)
        assert verify_mis(path_graph(20), chosen, k=2)

    def test_in_mask_consistent_with_in_set(self, small_laplace3d):
        result = kk_mis2(small_laplace3d)
        assert np.array_equal(np.nonzero(result.in_mask)[0], result.in_set)

    def test_fig1_example_selects_vertices_far_apart(self, fig1_graph):
        result = kk_mis2(fig1_graph)
        assert verify_mis(fig1_graph, result.in_set, k=2)
        assert result.size == 2  # the figure's {1, 4} in 1-based numbering


class TestPrioritySchemes:
    @pytest.mark.parametrize("scheme", ["fixed", "xor", "xorstar"])
    def test_all_schemes_valid(self, scheme, small_laplace3d):
        result = kk_mis2(small_laplace3d, priority_scheme=scheme)
        assert verify_mis(small_laplace3d, result.in_set, k=2)
        assert result.config.priority_scheme == scheme

    def test_xorstar_converges_in_few_iterations(self):
        graph = laplace3d(12, 12, 12)
        result = kk_mis2(graph, priority_scheme="xorstar")
        # Paper Table I: ~10 iterations at 10^6 vertices; small graphs need fewer.
        assert result.iterations <= 14

    def test_unknown_scheme_rejected(self, small_laplace3d):
        with pytest.raises(ValueError):
            kk_mis2(small_laplace3d, priority_scheme="bogus")

    def test_fixed_scheme_seed_changes_result(self):
        graph = grid2d(15, 15)
        a = kk_mis2(graph, priority_scheme="fixed", seed=0)
        b = kk_mis2(graph, priority_scheme="fixed", seed=1)
        assert verify_mis(graph, a.in_set, k=2) and verify_mis(graph, b.in_set, k=2)
        assert not np.array_equal(a.in_set, b.in_set)


class TestOptions:
    def test_worklist_toggle_does_not_change_result(self, small_laplace3d):
        with_wl = kk_mis2(small_laplace3d, use_worklists=True)
        without_wl = kk_mis2(small_laplace3d, use_worklists=False)
        assert np.array_equal(with_wl.in_set, without_wl.in_set)
        assert with_wl.iterations == without_wl.iterations

    def test_simd_flag_does_not_change_result(self, small_laplace3d):
        auto = kk_mis2(small_laplace3d)
        off = kk_mis2(small_laplace3d, simd=False)
        on = kk_mis2(small_laplace3d, simd=True)
        assert np.array_equal(auto.in_set, off.in_set)
        assert np.array_equal(auto.in_set, on.in_set)

    def test_simd_heuristic_uses_average_degree(self):
        low_degree = grid2d(20, 20)  # avg degree ~4 < 16
        high_degree = complete_graph(40)  # avg degree 39 >= 16
        assert kk_mis2(low_degree).config.simd is False
        assert kk_mis2(high_degree).config.simd is True

    def test_word_bits_32(self, small_laplace3d):
        r32 = kk_mis2(small_laplace3d, word_bits=32)
        assert verify_mis(small_laplace3d, r32.in_set, k=2)
        assert r32.config.word_bits == 32

    def test_config_recorded(self, small_laplace3d):
        result = kk_mis2(small_laplace3d, use_worklists=False, simd=True, seed=5)
        cfg = result.config
        assert cfg.algorithm == "kk"
        assert cfg.k == 2
        assert cfg.use_worklists is False
        assert cfg.packed_tuples is True
        assert cfg.simd is True
        assert cfg.seed == 5


class TestInstrumentation:
    def test_worklist_sizes_shrink(self, small_laplace3d):
        result = kk_mis2(small_laplace3d)
        sizes = [w1 for w1, _ in result.worklist_sizes]
        assert sizes[0] == small_laplace3d.num_vertices
        assert sizes[-1] < sizes[0]
        assert len(result.worklist_sizes) == result.iterations

    def test_traffic_recorded_per_phase(self, small_laplace3d):
        result = kk_mis2(small_laplace3d)
        by_kernel = result.traffic.by_kernel()
        for phase in ("refresh_row", "refresh_column", "decide", "compact_worklists"):
            assert phase in by_kernel
        assert result.traffic.num_kernels == 4 * result.iterations

    def test_worklists_reduce_traffic(self, small_laplace3d):
        with_wl = kk_mis2(small_laplace3d, use_worklists=True)
        without_wl = kk_mis2(small_laplace3d, use_worklists=False)
        assert with_wl.traffic.total_bytes < without_wl.traffic.total_bytes

    def test_result_repr(self, small_laplace3d):
        text = repr(kk_mis2(small_laplace3d))
        assert "kk" in text and "size=" in text

"""Tests for the Lemma IV.2 reduction (MIS-1 of G^2 is an MIS-2 of G)."""

import numpy as np
import pytest

from repro.graph import cycle_graph, grid2d, path_graph, random_gnp, square, star_graph
from repro.mis import (
    kk_mis2,
    luby_mis1,
    mis1_on_square_equals_mis2,
    mis2_via_square,
    verify_mis,
)


class TestLemmaIV2:
    def test_holds_on_every_small_graph(self, any_small_graph):
        assert mis1_on_square_equals_mis2(any_small_graph)

    def test_holds_on_structured_graph(self, small_laplace3d):
        assert mis1_on_square_equals_mis2(small_laplace3d)

    def test_mis2_of_square_result_is_mis1_of_square(self):
        g = grid2d(9, 9)
        result = mis2_via_square(g)
        assert verify_mis(square(g), result.in_set, k=1)
        assert verify_mis(g, result.in_set, k=2)


class TestComparisonWithDirectAlgorithm:
    @pytest.mark.parametrize(
        "factory",
        [lambda: path_graph(30), lambda: cycle_graph(25), lambda: grid2d(10, 10),
         lambda: random_gnp(70, 0.05, seed=11)],
    )
    def test_sizes_comparable(self, factory):
        g = factory()
        direct = kk_mis2(g)
        reduced = mis2_via_square(g)
        assert verify_mis(g, reduced.in_set, k=2)
        # Both are maximal so their sizes should be in the same ballpark.
        assert 0.5 <= reduced.size / max(direct.size, 1) <= 2.0

    def test_config_labelled(self):
        result = mis2_via_square(path_graph(10))
        assert result.config.algorithm == "mis1-on-square"
        assert result.config.k == 2

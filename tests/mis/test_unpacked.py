"""Tests for the unpacked-tuple variant of Algorithm 1 (the Fig. 2 ablation rung)."""

import numpy as np
import pytest

from repro.graph import grid2d
from repro.mis import kk_mis2, verify_mis
from repro.mis.unpacked import mis2_unpacked


class TestCorrectness:
    def test_valid_on_every_small_graph(self, any_small_graph):
        result = mis2_unpacked(any_small_graph)
        assert verify_mis(any_small_graph, result.in_set, k=2)

    @pytest.mark.parametrize("use_worklists", [False, True])
    def test_worklist_toggle_is_result_invariant(self, small_laplace3d, use_worklists):
        result = mis2_unpacked(small_laplace3d, use_worklists=use_worklists)
        assert verify_mis(small_laplace3d, result.in_set, k=2)

    def test_worklist_and_full_sweep_agree(self, small_laplace3d):
        a = mis2_unpacked(small_laplace3d, use_worklists=True)
        b = mis2_unpacked(small_laplace3d, use_worklists=False)
        assert np.array_equal(a.in_set, b.in_set)
        assert a.iterations == b.iterations

    def test_deterministic(self, small_laplace3d):
        a = mis2_unpacked(small_laplace3d)
        b = mis2_unpacked(small_laplace3d)
        assert np.array_equal(a.in_set, b.in_set)


class TestAblationProperties:
    def test_unpacked_moves_more_bytes_than_packed(self, small_laplace3d):
        packed = kk_mis2(small_laplace3d, use_worklists=True)
        unpacked = mis2_unpacked(small_laplace3d, use_worklists=True)
        assert unpacked.traffic.total_bytes > packed.traffic.total_bytes

    def test_worklists_reduce_unpacked_traffic(self, small_laplace3d):
        with_wl = mis2_unpacked(small_laplace3d, use_worklists=True)
        without_wl = mis2_unpacked(small_laplace3d, use_worklists=False)
        assert with_wl.traffic.total_bytes < without_wl.traffic.total_bytes

    def test_config_flags(self):
        graph = grid2d(10, 10)
        result = mis2_unpacked(graph, use_worklists=True)
        assert result.config.algorithm == "kk-unpacked"
        assert result.config.packed_tuples is False
        assert result.config.use_worklists is True

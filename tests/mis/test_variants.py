"""Tests for the Fig. 2 optimization ladder."""

import numpy as np
import pytest

from repro.graph import grid2d, laplace3d
from repro.mis import OPTIMIZATION_LEVELS, run_optimization_level, verify_mis
from repro.parallel import predict_device_time, scale_traffic


class TestLadderStructure:
    def test_five_levels_in_cumulative_order(self):
        keys = [lv.key for lv in OPTIMIZATION_LEVELS]
        assert keys == ["baseline", "random_priority", "worklist", "packed_status", "simd"]
        # Each level enables a superset of the previous level's optimizations.
        for prev, cur in zip(OPTIMIZATION_LEVELS, OPTIMIZATION_LEVELS[1:]):
            for flag in ("random_priority", "worklists", "packed", "simd"):
                assert getattr(cur, flag) >= getattr(prev, flag)

    def test_level_by_key_and_unknown(self):
        g = grid2d(8, 8)
        result = run_optimization_level(g, "baseline")
        assert result.config.algorithm == "bell"
        with pytest.raises(ValueError):
            run_optimization_level(g, "turbo")


class TestLadderResults:
    @pytest.mark.parametrize("level", OPTIMIZATION_LEVELS, ids=lambda lv: lv.key)
    def test_every_level_produces_valid_mis2(self, level, small_laplace3d):
        result = run_optimization_level(small_laplace3d, level)
        assert verify_mis(small_laplace3d, result.in_set, k=2)

    def test_config_flags_match_level(self, small_laplace3d):
        for level in OPTIMIZATION_LEVELS:
            result = run_optimization_level(small_laplace3d, level)
            assert result.config.packed_tuples == level.packed
            assert result.config.use_worklists == level.worklists

    def test_full_optimization_is_fastest_in_the_model(self):
        graph = laplace3d(12, 12, 12)
        # Extrapolate the recorded traffic to a paper-sized problem (~1M vertices) so
        # the V100 prediction is bandwidth-dominated rather than launch-dominated,
        # matching the regime Fig. 2 was measured in.
        factor = 1_000_000 / graph.num_vertices
        times = {
            lv.key: predict_device_time(
                scale_traffic(run_optimization_level(graph, lv).traffic, factor), "v100"
            )
            for lv in OPTIMIZATION_LEVELS
        }
        # The fully-optimized configuration (with SIMD) must beat the Bell baseline by
        # a wide margin in the V100 model — this is the headline of Fig. 2.
        assert times["baseline"] / times["simd"] > 2.0
        # Each broad optimization group helps: packed beats worklist-only, which
        # beats no-worklist configurations.
        assert times["packed_status"] <= times["worklist"]
        assert times["worklist"] <= times["random_priority"]

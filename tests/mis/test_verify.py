"""Tests for the distance-k verification machinery itself."""

import numpy as np
import pytest

from repro.graph import cycle_graph, empty_graph, from_edges, path_graph, star_graph
from repro.mis import (
    independence_violations,
    is_independent_set,
    is_maximal,
    verify_mis,
)


class TestIndependence:
    def test_path_distance2(self):
        g = path_graph(6)
        assert is_independent_set(g, [0, 3], k=2)
        assert not is_independent_set(g, [0, 2], k=2)
        assert is_independent_set(g, [0, 2], k=1)

    def test_empty_and_singleton_sets(self):
        g = cycle_graph(5)
        assert is_independent_set(g, [], k=2)
        assert is_independent_set(g, [3], k=2)

    def test_distance3(self):
        g = path_graph(8)
        assert is_independent_set(g, [0, 4], k=3)
        assert not is_independent_set(g, [0, 3], k=3)

    def test_invalid_vertex(self):
        with pytest.raises(ValueError):
            is_independent_set(path_graph(3), [5], k=2)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            is_independent_set(path_graph(3), [0], k=0)
        with pytest.raises(ValueError):
            is_maximal(path_graph(3), [0], k=0)


class TestMaximality:
    def test_star_center(self):
        g = star_graph(6)
        assert is_maximal(g, [0], k=2)
        assert is_maximal(g, [1], k=2)  # a leaf covers everything within distance 2

    def test_path_incomplete_cover(self):
        g = path_graph(10)
        assert not is_maximal(g, [0], k=2)
        assert is_maximal(g, [0, 3, 6, 9], k=2)

    def test_empty_graph_vacuously_maximal(self):
        assert is_maximal(empty_graph(0), [], k=2)

    def test_isolated_vertices_require_membership(self):
        g = empty_graph(3)
        assert not is_maximal(g, [0], k=2)
        assert is_maximal(g, [0, 1, 2], k=2)


class TestVerifyMIS:
    def test_known_mis2_of_path(self):
        g = path_graph(7)
        assert verify_mis(g, [0, 3, 6], k=2)
        assert not verify_mis(g, [0, 3], k=2)  # not maximal (6 uncovered)
        assert not verify_mis(g, [0, 2, 5], k=2)  # not independent

    def test_disconnected_graph(self, disconnected_graph):
        # one vertex per component of the triangle/path + both isolated vertices
        assert verify_mis(disconnected_graph, [0, 4, 7, 8], k=2)


class TestViolations:
    def test_lists_offending_pairs(self):
        g = path_graph(6)
        violations = independence_violations(g, [0, 2, 5], k=2)
        assert violations == [(0, 2)]

    def test_no_violations(self):
        g = path_graph(6)
        assert independence_violations(g, [0, 3], k=2) == []

    def test_matches_is_independent(self, nonempty_small_graph):
        g = nonempty_small_graph
        rng = np.random.default_rng(0)
        candidates = rng.choice(g.num_vertices, size=min(5, g.num_vertices), replace=False)
        assert (len(independence_violations(g, candidates, 2)) == 0) == is_independent_set(
            g, candidates, 2
        )

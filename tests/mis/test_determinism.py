"""Determinism tests.

The paper advertises determinism as a first-class property: the same input must yield
the same MIS-2 on every architecture and on every run. The Python analogue is
checked here: repeated runs, different execution backends (vectorised vs loop
reference), and both word widths must all produce bit-identical results.
"""

import numpy as np
import pytest

from repro.graph import grid2d, laplace3d, random_gnp, random_regular
from repro.mis import bell_mis, kk_mis2, luby_mis1, mis2_reference
from repro.coarsen import mis2_aggregation, mis2_basic_aggregation
from repro.coloring import greedy_color


GRAPHS = {
    "grid": lambda: grid2d(12, 13),
    "laplace": lambda: laplace3d(8, 8, 8),
    "gnp": lambda: random_gnp(90, 0.05, seed=2),
    "regular": lambda: random_regular(120, 6, seed=4),
}


@pytest.fixture(params=sorted(GRAPHS), ids=sorted(GRAPHS))
def det_graph(request):
    return GRAPHS[request.param]()


class TestRunToRunDeterminism:
    def test_kk_mis2(self, det_graph):
        runs = [kk_mis2(det_graph) for _ in range(3)]
        for r in runs[1:]:
            assert np.array_equal(runs[0].in_set, r.in_set)
            assert runs[0].iterations == r.iterations

    def test_bell(self, det_graph):
        assert np.array_equal(bell_mis(det_graph).in_set, bell_mis(det_graph).in_set)

    def test_luby(self, det_graph):
        assert np.array_equal(luby_mis1(det_graph).in_set, luby_mis1(det_graph).in_set)

    def test_coloring(self, det_graph):
        assert np.array_equal(greedy_color(det_graph).colors, greedy_color(det_graph).colors)

    def test_aggregation(self, det_graph):
        a = mis2_aggregation(det_graph)
        b = mis2_aggregation(det_graph)
        assert np.array_equal(a.labels, b.labels)
        c = mis2_basic_aggregation(det_graph)
        d = mis2_basic_aggregation(det_graph)
        assert np.array_equal(c.labels, d.labels)


class TestCrossBackendDeterminism:
    def test_vectorised_equals_loop_reference(self, det_graph):
        if det_graph.num_vertices > 600:
            pytest.skip("reference implementation is slow")
        assert np.array_equal(kk_mis2(det_graph).in_set, mis2_reference(det_graph).in_set)

    def test_word_width_is_independent_of_set_validity(self, det_graph):
        from repro.mis import verify_mis

        r32 = kk_mis2(det_graph, word_bits=32)
        r64 = kk_mis2(det_graph, word_bits=64)
        assert verify_mis(det_graph, r32.in_set, k=2)
        assert verify_mis(det_graph, r64.in_set, k=2)

    def test_worklist_and_simd_flags_do_not_affect_output(self, det_graph):
        base = kk_mis2(det_graph)
        for use_worklists in (True, False):
            for simd in (None, True, False):
                other = kk_mis2(det_graph, use_worklists=use_worklists, simd=simd)
                assert np.array_equal(base.in_set, other.in_set)

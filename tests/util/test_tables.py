"""Tests for repro.util.tables."""

import math

import pytest

from repro.util import Table, format_float, geometric_mean


class TestFormatFloat:
    def test_integer_valued_float(self):
        assert format_float(3.0) == "3"

    def test_significant_digits(self):
        assert format_float(3.14159, sig=3) == "3.14"

    def test_none_and_nan(self):
        assert format_float(None) == "-"
        assert format_float(float("nan")) == "-"

    def test_zero(self):
        assert format_float(0.0) == "0"


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_matches_log_definition(self):
        vals = [1.5, 2.5, 10.0, 0.3]
        expected = math.exp(sum(math.log(v) for v in vals) / len(vals))
        assert geometric_mean(vals) == pytest.approx(expected)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestTable:
    def test_render_contains_header_and_rows(self):
        t = Table(["matrix", "iters"], title="demo")
        t.add_row(["ecology2", 8])
        t.add_row(["thermal2", 9.0])
        text = t.render()
        assert "demo" in text
        assert "matrix" in text and "iters" in text
        assert "ecology2" in text
        assert "thermal2" in text
        # float with integral value renders as integer
        assert " 9" in text

    def test_row_length_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_bool_rendering(self):
        t = Table(["scheme", "det"])
        t.add_row(["mis2", True])
        t.add_row(["d2c", False])
        dicts = t.to_dicts()
        assert dicts[0]["det"] == "yes"
        assert dicts[1]["det"] == "no"

    def test_to_dicts_roundtrip(self):
        t = Table(["x", "y"])
        t.add_row([1, 2])
        assert t.to_dicts() == [{"x": "1", "y": "2"}]

    def test_alignment_width(self):
        t = Table(["name", "v"])
        t.add_row(["a_very_long_matrix_name", 1])
        lines = t.render().splitlines()
        header, divider, row = lines[0], lines[1], lines[2]
        assert len(header) == len(divider) == len(row.rstrip()) or len(header) <= len(row)

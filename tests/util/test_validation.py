"""Tests for repro.util.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.util import (
    check_array_1d,
    check_integer_dtype,
    check_nonnegative,
    check_positive,
    check_square_matrix,
    require,
)


def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")


def test_check_array_1d():
    out = check_array_1d([1, 2, 3], "x")
    assert out.shape == (3,)
    with pytest.raises(ValueError):
        check_array_1d(np.zeros((2, 2)), "x")


def test_check_integer_dtype():
    check_integer_dtype(np.arange(3), "x")
    with pytest.raises(TypeError):
        check_integer_dtype(np.zeros(3, dtype=float), "x")


def test_check_nonnegative_and_positive():
    assert check_nonnegative(0, "x") == 0
    assert check_positive(1, "x") == 1
    with pytest.raises(ValueError):
        check_nonnegative(-1, "x")
    with pytest.raises(ValueError):
        check_positive(0, "x")


def test_check_square_matrix():
    A = check_square_matrix(np.eye(3))
    assert sp.issparse(A)
    assert A.shape == (3, 3)
    with pytest.raises(ValueError):
        check_square_matrix(np.ones((2, 3)))

"""Tests for repro.util.timing."""

import time

import pytest

from repro.util import Timer, TimingStats, repeat_timed


class TestTimer:
    def test_start_stop_measures_elapsed(self):
        t = Timer().start()
        time.sleep(0.01)
        elapsed = t.stop()
        assert elapsed >= 0.009
        assert t.elapsed == elapsed

    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_while_running_is_monotonic(self):
        t = Timer().start()
        first = t.elapsed
        time.sleep(0.002)
        assert t.elapsed >= first
        t.stop()

    def test_restart_resets(self):
        t = Timer().start()
        time.sleep(0.002)
        t.stop()
        t.start()
        t.stop()
        assert t.elapsed < 0.01


class TestTimingStats:
    def test_empty_stats(self):
        s = TimingStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.minimum == 0.0
        assert s.maximum == 0.0
        assert s.stddev == 0.0

    def test_aggregates(self):
        s = TimingStats()
        for v in (1.0, 2.0, 3.0):
            s.add(v)
        assert s.count == 3
        assert s.total == pytest.approx(6.0)
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.stddev == pytest.approx(1.0)

    def test_single_trial_stddev_zero(self):
        s = TimingStats([5.0])
        assert s.stddev == 0.0


class TestRepeatTimed:
    def test_returns_result_and_trial_count(self):
        calls = []

        def fn():
            calls.append(1)
            return 42

        result, stats = repeat_timed(fn, trials=3, warmup=2)
        assert result == 42
        assert stats.count == 3
        assert len(calls) == 5  # warmup + trials

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            repeat_timed(lambda: None, trials=0)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            repeat_timed(lambda: None, trials=1, warmup=-1)

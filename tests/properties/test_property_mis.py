"""Property-based tests of the MIS algorithms.

These are the core invariants the paper's claims rest on: independence, maximality,
determinism, cross-algorithm agreement with the Lemma IV.2 reduction, and exact
equivalence between the vectorised kernel and the loop reference implementation.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.graph import square
from repro.mis import (
    bell_mis,
    independence_violations,
    is_independent_set,
    is_maximal,
    kk_mis2,
    luby_mis1,
    mis2_reference,
    mis2_via_square,
    verify_mis,
)

from tests.properties.strategies import graphs

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graphs())
@settings(**COMMON)
def test_kk_mis2_is_independent_and_maximal(graph):
    result = kk_mis2(graph)
    assert is_independent_set(graph, result.in_set, k=2)
    assert is_maximal(graph, result.in_set, k=2)
    assert independence_violations(graph, result.in_set, k=2) == []


@given(graphs())
@settings(**COMMON)
def test_bell_mis2_is_valid(graph):
    result = bell_mis(graph, k=2)
    assert verify_mis(graph, result.in_set, k=2)


@given(graphs())
@settings(**COMMON)
def test_luby_mis1_is_valid(graph):
    result = luby_mis1(graph)
    assert verify_mis(graph, result.in_set, k=1)


@given(graphs())
@settings(**COMMON)
def test_kk_mis2_is_deterministic(graph):
    a = kk_mis2(graph)
    b = kk_mis2(graph)
    assert np.array_equal(a.in_set, b.in_set)
    assert a.iterations == b.iterations


@given(graphs(max_vertices=18))
@settings(**COMMON)
def test_vectorised_kernel_matches_loop_reference(graph):
    fast = kk_mis2(graph)
    slow = mis2_reference(graph)
    assert np.array_equal(fast.in_set, slow.in_set)
    assert fast.iterations == slow.iterations


@given(graphs())
@settings(**COMMON)
def test_lemma_iv2_mis1_of_square_is_mis2(graph):
    result = mis2_via_square(graph)
    assert verify_mis(graph, result.in_set, k=2)


@given(graphs())
@settings(**COMMON)
def test_mis2_of_graph_is_mis1_of_square(graph):
    # The converse direction of the reduction: Algorithm 1's output, viewed in the
    # boolean square, is a distance-1 MIS.
    result = kk_mis2(graph)
    sq = square(graph)
    assert verify_mis(sq, result.in_set, k=1)


@given(graphs())
@settings(**COMMON)
def test_worklist_and_simd_toggles_never_change_the_set(graph):
    base = kk_mis2(graph)
    no_wl = kk_mis2(graph, use_worklists=False)
    simd = kk_mis2(graph, simd=True)
    assert np.array_equal(base.in_set, no_wl.in_set)
    assert np.array_equal(base.in_set, simd.in_set)


@given(graphs())
@settings(**COMMON)
def test_mis2_size_bounds(graph):
    result = kk_mis2(graph)
    # Size can never exceed the vertex count, and an MIS-2 of a non-empty graph is
    # never empty.
    assert 0 <= result.size <= graph.num_vertices
    if graph.num_vertices > 0:
        assert result.size >= 1

"""Property-based tests of the overlapped superstep schedule.

The overlap contract (`repro.parallel.partitioned`, "overlapped schedule"
notes): the drivers' boundary/interior split is deterministic under *any*
task interleaving consistent with the one ordering guarantee
:class:`~repro.parallel.backends.ResidentSession` makes — tasks for the same
part execute in submission order (per-part FIFO). The strategy here drives
the partitioned kernels through a session whose scheduler is adversarial: it
queues every submitted task and, at each collect, executes queued work across
*all* pending phases in a drawn random order (later phases' tasks on one part
may run before earlier phases' tasks on another). Whatever interleaving comes
out, statuses and every gated deterministic count must be bit-identical to
the barrier baseline.
"""

from collections import deque
from random import Random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import greedy_color
from repro.mis import kk_mis2, luby_mis1
from repro.parallel import NumpyBackend, build_partition_layout
from repro.parallel.backends import _LocalResidentSession

from tests.properties.strategies import graphs

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class _ScrambledSession(_LocalResidentSession):
    """Session that executes pending tasks in an adversarial drawn order.

    Every submitted task lands in its part's FIFO queue — the only order the
    resident-session contract guarantees. A collect then repeatedly picks a
    random part with queued work and runs its head task, until the collecting
    phase's own tasks have all resolved. Because the queues hold tasks from
    *every* in-flight phase, this samples interleavings the lazy local
    session never produces: an interior sub-phase draining on one part while
    a sibling part is still inside the boundary sub-phase, or vice versa.
    """

    def __init__(self, token, payloads, states, resident=True, rng=None):
        super().__init__(token, payloads, states, resident=resident)
        self._rng = rng
        self._part_queues = {}

    def _submit(self, fn, tasks):
        results = {}

        for j, (i, delta) in enumerate(tasks):
            def run_one(j=j, i=i, delta=delta, fn=fn):
                results[j] = fn(self._payloads[i], self._states[i], delta)

            self._part_queues.setdefault(i, deque()).append(run_one)

        def collect():
            while len(results) < len(tasks):
                ready = sorted(p for p, q in self._part_queues.items() if q)
                self._part_queues[self._rng.choice(ready)].popleft()()
            return [results[j] for j in range(len(tasks))]

        return collect


class _ScrambledBackend(NumpyBackend):
    """Numpy-reference backend whose resident sessions scramble execution."""

    name = "scrambled"

    def __init__(self, seed):
        self._rng = Random(seed)

    def map_partitions_resident(self, token, payloads, states, resident=True):
        return _ScrambledSession(
            token, payloads, states, resident=resident, rng=self._rng
        )


def _deterministic_stats(stats):
    """Drop the perf_counter timing triple — everything else is gated."""
    return {k: v for k, v in stats.to_dict().items() if not k.endswith("_seconds")}


_KERNELS = [
    (
        "kk",
        lambda g, layout, backend, overlap: kk_mis2(
            g, seed=0, partitions=layout, backend=backend, overlap=overlap
        ),
        lambda r: r.in_set,
    ),
    (
        "luby",
        lambda g, layout, backend, overlap: luby_mis1(
            g, seed=0, partitions=layout, backend=backend, overlap=overlap
        ),
        lambda r: r.in_set,
    ),
    (
        "color",
        lambda g, layout, backend, overlap: greedy_color(
            g, partitions=layout, backend=backend, overlap=overlap
        ),
        lambda r: r.colors,
    ),
]


@given(graphs(), st.integers(min_value=1, max_value=4), st.integers(0, 2**31))
@settings(**COMMON)
def test_any_schedule_interleaving_is_bit_identical_to_barrier(graph, k, seed):
    layout = build_partition_layout(graph, k)
    for name, run, values in _KERNELS:
        barrier = run(graph, layout, "numpy", False)
        overlapped = run(graph, layout, _ScrambledBackend(seed), True)
        assert np.array_equal(values(overlapped), values(barrier)), name
        assert _deterministic_stats(overlapped.partition_stats) == _deterministic_stats(
            barrier.partition_stats
        ), name


@given(graphs(), st.integers(min_value=1, max_value=4), st.integers(0, 2**31))
@settings(**COMMON)
def test_scrambled_full_halo_matches_barrier_full_halo(graph, k, seed):
    # The full-halo wire format exercises the explicit sub-worklist deltas
    # (the changed-delta protocol elides them), so scramble that path too.
    layout = build_partition_layout(graph, k)
    barrier = kk_mis2(
        graph, seed=0, partitions=layout, changed_deltas=False, overlap=False
    )
    overlapped = kk_mis2(
        graph,
        seed=0,
        partitions=layout,
        backend=_ScrambledBackend(seed),
        changed_deltas=False,
        overlap=True,
    )
    assert np.array_equal(overlapped.in_set, barrier.in_set)
    assert _deterministic_stats(overlapped.partition_stats) == _deterministic_stats(
        barrier.partition_stats
    )

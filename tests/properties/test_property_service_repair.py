"""Property tests: GraphService repair is bit-identical to full recompute.

The service's whole correctness story rests on one claim — after any
sequence of mutations, answering a repairable query by patching the cached
result yields *exactly* the array a from-scratch run would produce, on every
backend and partition count. These tests pin that claim three ways:

1. the repair engine alone (``repair_mis2`` / ``repair_ordered_color``)
   against the serial references, for single random edge toggles;
2. the serial references against the real parallel kernel
   (``kk_mis2(priority_scheme="fixed")``), so "repairable semantics" and
   "what the kernels compute" provably coincide;
3. the full service — random mutation sequences, query-after-every-mutation,
   compared bit-for-bit against fresh kernel runs — across a
   backend x partition matrix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edges
from repro.mis.kk import kk_mis2
from repro.service import (
    GraphService,
    mis_keys,
    ordered_color,
    repair_mis2,
    repair_ordered_color,
    serial_mis2_mask,
)
from tests.properties.strategies import graphs

COMMON = dict(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
SERVICE_COMMON = dict(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------------
# Layer 2: the serial references match the parallel kernel.
# --------------------------------------------------------------------------


@given(graph=graphs(), seed=st.integers(min_value=0, max_value=5))
@settings(**COMMON)
def test_serial_reference_matches_fixed_scheme_kernel(graph, seed):
    keys = mis_keys(graph.num_vertices, seed=seed)
    expected = kk_mis2(graph, priority_scheme="fixed", seed=seed).in_mask
    np.testing.assert_array_equal(serial_mis2_mask(graph, keys), expected)


@given(graph=graphs())
@settings(**COMMON)
def test_ordered_color_is_proper_and_greedy_minimal(graph):
    keys = mis_keys(graph.num_vertices, seed=0)
    colors = ordered_color(graph, keys)
    rowmap, entries = graph.rowmap, graph.entries
    for v in range(graph.num_vertices):
        nbrs = entries[rowmap[v]: rowmap[v + 1]]
        assert not np.any(colors[nbrs] == colors[v]), "improper coloring"
        # Greedy minimality: every smaller color is taken by a smaller-key
        # neighbour (otherwise the order-greedy rule would have used it).
        smaller = nbrs[keys[nbrs] < keys[v]]
        for c in range(int(colors[v])):
            assert c in set(colors[smaller].tolist())


# --------------------------------------------------------------------------
# Layer 1: the repair engine alone, for a single random edge toggle.
# --------------------------------------------------------------------------


def _closed_neighborhood(graph, vertices):
    rowmap, entries = graph.rowmap, graph.entries
    hops = [np.asarray(vertices, dtype=np.int64)] + [
        entries[rowmap[v]: rowmap[v + 1]] for v in vertices
    ]
    return np.unique(np.concatenate(hops)).astype(np.int64)


def _edge_set(graph):
    n = graph.num_vertices
    out = set()
    for v in range(n):
        for u in graph.entries[graph.rowmap[v]: graph.rowmap[v + 1]]:
            out.add((min(v, int(u)), max(v, int(u))))
    return out


@given(
    graph=graphs(max_vertices=14, max_extra_edges=30),
    u=st.integers(min_value=0, max_value=13),
    v=st.integers(min_value=0, max_value=13),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(**COMMON)
def test_repair_engine_single_edge_toggle(graph, u, v, seed):
    n = graph.num_vertices
    if n < 2:
        return
    u, v = u % n, v % n
    if u == v:
        return
    edges = _edge_set(graph)
    toggled = (min(u, v), max(u, v))
    adding = toggled not in edges
    new_edges = edges | {toggled} if adding else edges - {toggled}
    new_graph = from_edges(n, sorted(new_edges))

    keys = mis_keys(n, seed=seed)
    prev_mask = serial_mis2_mask(graph, keys)
    # MIS dirty frontier: closed neighbourhood of the endpoints in whichever
    # graph still contains the toggled edge's paths.
    frontier_graph = new_graph if adding else graph
    dirty = _closed_neighborhood(frontier_graph, [u, v])
    repaired = repair_mis2(new_graph, keys, prev_mask, dirty)
    assert repaired is not None
    mask, touched = repaired
    np.testing.assert_array_equal(mask, serial_mis2_mask(new_graph, keys))
    assert touched >= dirty.size  # every seed is evaluated at least once

    ckeys = mis_keys(n, seed=0)
    prev_colors = ordered_color(graph, ckeys)
    re_colored = repair_ordered_color(
        new_graph, ckeys, prev_colors, np.array([u, v], dtype=np.int64)
    )
    assert re_colored is not None
    np.testing.assert_array_equal(re_colored[0], ordered_color(new_graph, ckeys))


@given(graph=graphs(max_vertices=14, max_extra_edges=30))
@settings(**COMMON)
def test_repair_budget_zero_forces_fallback_or_exact(graph):
    """A budget smaller than the frontier returns ``None``, never a wrong mask."""
    n = graph.num_vertices
    if n == 0:
        return
    keys = mis_keys(n, seed=0)
    prev = np.zeros(n, dtype=bool)  # deliberately wrong cached mask
    dirty = np.arange(n, dtype=np.int64)
    result = repair_mis2(graph, keys, prev, dirty, budget=0)
    assert result is None


# --------------------------------------------------------------------------
# Layer 3: the full service under random mutation sequences.
# --------------------------------------------------------------------------


@st.composite
def mutation_ops(draw, max_ops: int = 4):
    """Abstract mutation scripts; vertex ids resolve modulo the live count."""
    count = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for _ in range(count):
        kind = draw(
            st.sampled_from(
                ["add_edges", "remove_edges", "add_vertices", "remove_vertices"]
            )
        )
        if kind == "add_vertices":
            ops.append((kind, draw(st.integers(min_value=1, max_value=3))))
        elif kind == "remove_vertices":
            ops.append(
                (
                    kind,
                    draw(
                        st.lists(
                            st.integers(min_value=0, max_value=9999),
                            min_size=1,
                            max_size=2,
                        )
                    ),
                )
            )
        else:
            ops.append(
                (
                    kind,
                    draw(
                        st.lists(
                            st.tuples(
                                st.integers(min_value=0, max_value=9999),
                                st.integers(min_value=0, max_value=9999),
                            ),
                            min_size=1,
                            max_size=4,
                        )
                    ),
                )
            )
    return ops


def _apply(svc: GraphService, name: str, kind: str, payload) -> None:
    n = svc.graph(name).num_vertices
    if kind == "add_vertices":
        svc.add_vertices(name, payload)
    elif kind == "remove_vertices":
        if n == 0:
            return
        svc.remove_vertices(name, sorted({v % n for v in payload}))
    else:
        if n < 2:
            return
        getattr(svc, kind)(name, [(a % n, b % n) for a, b in payload])


def _check_against_scratch(svc: GraphService, name: str, seed: int) -> None:
    graph = svc.graph(name)
    mask = svc.mis2(name, seed=seed)
    expected = kk_mis2(graph, priority_scheme="fixed", seed=seed).in_mask
    np.testing.assert_array_equal(np.asarray(mask), expected)
    colors = svc.color(name)
    np.testing.assert_array_equal(
        np.asarray(colors), ordered_color(graph, mis_keys(graph.num_vertices, 0))
    )


@pytest.mark.parametrize(
    "backend,parts",
    [("numpy", None), ("numpy", 3), ("chunked", None), ("threaded", 2)],
)
@given(
    graph=graphs(max_vertices=16, max_extra_edges=30),
    ops=mutation_ops(),
    seed=st.integers(min_value=0, max_value=2),
)
@settings(**SERVICE_COMMON)
def test_service_repair_bit_identical_across_mutations(backend, parts, graph, ops, seed):
    with GraphService(backend=backend, parts=parts, repair_crossover=1.0) as svc:
        svc.add_graph("g", graph)
        _check_against_scratch(svc, "g", seed)  # seed the caches
        for kind, payload in ops:
            _apply(svc, "g", kind, payload)
            _check_against_scratch(svc, "g", seed)
        # Whatever mix of repair / fallback / structural recompute ran, the
        # books must balance: every query was either a hit, a repair, or a
        # full recompute.
        stats = svc.stats
        assert (
            stats.cache_hits + stats.repairs + stats.full_recomputes
            == stats.queries - stats.coalesced
        )


@given(graph=graphs(max_vertices=16, max_extra_edges=30), ops=mutation_ops())
@settings(**SERVICE_COMMON)
def test_service_crossover_zero_still_bit_identical(graph, ops):
    """With the tightest crossover, repair mostly falls back — results hold."""
    with GraphService(backend="numpy", repair_crossover=0.0) as svc:
        svc.add_graph("g", graph)
        _check_against_scratch(svc, "g", 0)
        for kind, payload in ops:
            _apply(svc, "g", kind, payload)
            _check_against_scratch(svc, "g", 0)

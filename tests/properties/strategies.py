"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graph import CSRGraph, from_edges

__all__ = ["graphs", "graph_and_vertex_subset"]


@st.composite
def graphs(draw, max_vertices: int = 24, max_extra_edges: int = 60) -> CSRGraph:
    """Random small undirected graphs (possibly disconnected, possibly empty)."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    if n == 0:
        return from_edges(0, [])
    num_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=0,
            max_size=num_edges,
        )
    )
    return from_edges(n, edges)


@st.composite
def graph_and_vertex_subset(draw, max_vertices: int = 20):
    """A random graph plus a random subset of its vertices."""
    graph = draw(graphs(max_vertices=max_vertices))
    if graph.num_vertices == 0:
        return graph, np.zeros(0, dtype=np.int64)
    subset = draw(
        st.lists(st.integers(0, graph.num_vertices - 1), min_size=0, max_size=graph.num_vertices)
    )
    return graph, np.unique(np.asarray(subset, dtype=np.int64))

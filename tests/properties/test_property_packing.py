"""Property-based tests of the compressed status tuples and the hash functions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import TuplePacking, hash_iter_vertex, xorshift64, xorshift64star


@given(
    n=st.integers(min_value=1, max_value=10_000),
    vertex=st.integers(min_value=0),
    priority=st.integers(min_value=0, max_value=2**64 - 1),
    word_bits=st.sampled_from([32, 64]),
)
@settings(max_examples=200, deadline=None)
def test_pack_unpack_roundtrip_and_ordering(n, vertex, priority, word_bits):
    vertex = vertex % n
    packer = TuplePacking(n, word_bits=word_bits)
    packed = packer.pack(np.uint64(priority), np.int64(vertex))
    # Equation 1: never collides with the IN/OUT markers.
    assert packer.in_value < packed < packer.out_value
    prio_back, vid_back = packer.unpack(np.asarray([packed]))
    assert int(vid_back[0]) == vertex
    assert int(prio_back[0]) == priority & ((1 << packer.prio_bits) - 1)
    assert int(packer.vertex_of(np.asarray([packed]))[0]) == vertex


@given(
    n=st.integers(min_value=2, max_value=2000),
    priority=st.integers(min_value=0, max_value=2**64 - 1),
    v1=st.integers(min_value=0),
    v2=st.integers(min_value=0),
)
@settings(max_examples=100, deadline=None)
def test_packed_comparison_breaks_ties_by_vertex_id(n, priority, v1, v2):
    v1, v2 = v1 % n, v2 % n
    packer = TuplePacking(n)
    a = packer.pack(np.uint64(priority), np.int64(v1))
    b = packer.pack(np.uint64(priority), np.int64(v2))
    if v1 == v2:
        assert a == b
    else:
        assert (a < b) == (v1 < v2)


@given(st.lists(st.integers(min_value=1, max_value=2**64 - 1), min_size=1, max_size=200, unique=True))
@settings(max_examples=100, deadline=None)
def test_xorshift_is_injective_on_samples(values):
    arr = np.asarray(values, dtype=np.uint64)
    assert np.unique(xorshift64(arr)).size == arr.size
    assert np.unique(xorshift64star(arr)).size == arr.size


@given(
    iteration=st.integers(min_value=0, max_value=1000),
    vertices=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100, unique=True),
)
@settings(max_examples=100, deadline=None)
def test_hash_iter_vertex_distinct_per_vertex(iteration, vertices):
    arr = np.asarray(vertices, dtype=np.uint64)
    hashed = hash_iter_vertex(iteration, arr)
    assert np.unique(hashed).size == arr.size

"""Property-based tests of the partition-parallel execution layer.

The invariants the intra-graph sharding contract rests on: a layout is an
exact cover of the vertex set, boundary/halo relationships are symmetric
across the cut, and the partitioned kernels are independent of both the part
count and any permutation of the part labels — always bit-identical to the
unpartitioned reference.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import greedy_color
from repro.mis import kk_mis2, luby_mis1
from repro.parallel import build_partition_layout, partition_vertices
from repro.parallel.partitioned import HaloDeltaTracker, _scatter_changed

from tests.properties.strategies import graphs

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_labels(draw, max_parts: int = 5):
    """A random graph plus random (possibly unbalanced/empty-part) labels."""
    graph = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=max_parts))
    n = graph.num_vertices
    labels = np.asarray(
        draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n)), dtype=np.int64
    )
    return graph, labels


@given(graphs(), st.integers(min_value=1, max_value=5))
@settings(**COMMON)
def test_partition_covers_every_vertex_exactly_once(graph, k):
    layout = build_partition_layout(graph, k)
    assert layout.num_parts == k
    owned = np.concatenate([p.owned for p in layout.parts]) if layout.parts else np.zeros(0)
    assert owned.size == graph.num_vertices
    assert np.array_equal(np.sort(owned), np.arange(graph.num_vertices))
    # Labels agree with membership.
    for part in layout.parts:
        assert np.all(layout.labels[part.owned] == part.part_id)


@given(graph_and_labels())
@settings(**COMMON)
def test_boundary_and_halo_are_symmetric(case):
    graph, labels = case
    layout = build_partition_layout(graph, labels)
    boundary = {p.part_id: set(p.boundary().tolist()) for p in layout.parts}
    halo = {p.part_id: set(p.halo.tolist()) for p in layout.parts}
    crossing = 0
    for u, v in graph.iter_edges():
        pu, pv = int(labels[u]), int(labels[v])
        if pu == pv:
            continue
        crossing += 1
        # Both endpoints of a cut edge are boundary vertices of their owners...
        assert u in boundary[pu] and v in boundary[pv]
        # ... and each is a ghost of the other's part.
        assert v in halo[pu] and u in halo[pv]
    assert crossing == layout.cut_edges
    # Every ghost really is a boundary vertex of the part that owns it.
    for part in layout.parts:
        for ghost in part.halo.tolist():
            assert ghost in boundary[int(labels[ghost])]
    assert layout.interior_vertices + layout.boundary_vertices == graph.num_vertices


@given(graph_and_labels())
@settings(**COMMON)
def test_partitioned_kernels_match_reference_for_arbitrary_labels(case):
    graph, labels = case
    mis = kk_mis2(graph)
    pmis = kk_mis2(graph, partitions=labels)
    assert np.array_equal(mis.in_set, pmis.in_set)
    assert mis.iterations == pmis.iterations
    coloring = greedy_color(graph)
    pcoloring = greedy_color(graph, partitions=labels)
    assert np.array_equal(coloring.colors, pcoloring.colors)
    assert coloring.rounds == pcoloring.rounds


@given(graph_and_labels())
@settings(**COMMON)
def test_resident_and_nonresident_paths_identical(case):
    """Rank-resident execution and the re-ship-everything baseline agree with
    the reference bit-for-bit; only the shipped-bytes accounting differs, and
    the resident run never ships more in total than the baseline."""
    graph, labels = case
    ref = kk_mis2(graph)
    resident = kk_mis2(graph, partitions=labels, resident=True)
    baseline = kk_mis2(graph, partitions=labels, resident=False)
    assert np.array_equal(ref.in_set, resident.in_set)
    assert np.array_equal(ref.in_set, baseline.in_set)
    assert ref.iterations == resident.iterations == baseline.iterations
    sr, sn = resident.partition_stats, baseline.partition_stats
    assert sr.supersteps == sn.supersteps
    assert sn.resident_bytes == 0
    if sr.supersteps:
        assert sr.resident_bytes > 0
        assert sr.resident_bytes + sr.superstep_bytes <= sn.superstep_bytes
        assert sr.max_superstep_bytes <= sn.max_superstep_bytes


@given(graph_and_labels())
@settings(**COMMON)
def test_changed_and_full_delta_formats_identical(case):
    """The changed-only delta wire format and the full-halo format agree with
    the reference bit-for-bit, run the same number of supersteps, and the
    changed format never ships more — per phase or in total."""
    graph, labels = case
    ref = kk_mis2(graph)
    changed = kk_mis2(graph, partitions=labels, changed_deltas=True)
    full = kk_mis2(graph, partitions=labels, changed_deltas=False)
    assert np.array_equal(ref.in_set, changed.in_set)
    assert np.array_equal(ref.in_set, full.in_set)
    assert ref.iterations == changed.iterations == full.iterations
    sc, sf = changed.partition_stats, full.partition_stats
    assert sc.supersteps == sf.supersteps
    assert sc.resident_bytes == sf.resident_bytes
    assert sc.superstep_bytes <= sf.superstep_bytes
    assert sc.max_superstep_bytes <= sf.max_superstep_bytes


@given(graph_and_labels(), st.data())
@settings(**COMMON)
def test_halo_tracker_reconstructs_full_halo_exchange(case, data):
    """The reconstruction invariant of the changed-delta protocol: for any
    interleaving of value changes and per-part refreshes, cumulatively
    applying the tracker's updates to a part's last-known halo values always
    rebuilds the full halo gather exactly."""
    graph, labels = case
    layout = build_partition_layout(graph, labels)
    n = graph.num_vertices
    values = np.zeros(n, dtype=np.int64)
    tracker = HaloDeltaTracker(layout, ("A",))
    # Each part's halo mirror starts current — exactly like session open.
    mirrors = [values[p.halo].copy() for p in layout.parts]
    for step in range(data.draw(st.integers(min_value=1, max_value=6), label="steps")):
        if n:
            idx = np.unique(
                np.asarray(
                    data.draw(
                        st.lists(st.integers(0, n - 1), min_size=0, max_size=n),
                        label="touched",
                    ),
                    dtype=np.int64,
                )
            )
            new = values[idx] + np.asarray(
                data.draw(
                    st.lists(st.integers(0, 1), min_size=idx.size, max_size=idx.size),
                    label="increments",
                ),
                dtype=np.int64,
            )
            tracker.mark("A", _scatter_changed(values, idx, new))
        refreshed = data.draw(
            st.lists(
                st.integers(0, layout.num_parts - 1),
                min_size=0,
                max_size=layout.num_parts,
                unique=True,
            ),
            label="refreshed",
        )
        for part in refreshed:
            halo = layout.parts[part].halo
            positions, vals = tracker.take("A", part, values)
            if positions is None:
                mirrors[part][:] = vals
            else:
                mirrors[part][positions] = vals
            assert np.array_equal(mirrors[part], values[halo])
    # Parts never refreshed above still reconstruct on a final take.
    for part, p in enumerate(layout.parts):
        positions, vals = tracker.take("A", part, values)
        if positions is None:
            mirrors[part][:] = vals
        else:
            mirrors[part][positions] = vals
        assert np.array_equal(mirrors[part], values[p.halo])


@given(graphs(), st.integers(min_value=2, max_value=5), st.randoms(use_true_random=False))
@settings(**COMMON)
def test_partitioned_mis_independent_of_part_permutation(graph, k, rng):
    labels = partition_vertices(graph, k) if (k & (k - 1)) == 0 else (
        (np.arange(graph.num_vertices, dtype=np.int64) * k) // max(1, graph.num_vertices)
    )
    perm = np.arange(k, dtype=np.int64)
    rng.shuffle(perm)
    permuted = perm[labels] if labels.size else labels
    a = kk_mis2(graph, partitions=labels)
    b = kk_mis2(graph, partitions=permuted)
    ref = kk_mis2(graph)
    assert np.array_equal(a.in_set, b.in_set)
    assert np.array_equal(a.in_set, ref.in_set)
    assert a.iterations == b.iterations == ref.iterations
    la = luby_mis1(graph, partitions=labels)
    lb = luby_mis1(graph, partitions=permuted)
    assert np.array_equal(la.in_set, lb.in_set)
    assert la.iterations == lb.iterations

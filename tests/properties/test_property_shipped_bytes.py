"""Property-based tests of the logical shipped-bytes meter.

``shipped_nbytes`` is the single source of truth for every byte count the
partitioned kernels record, so the strategy builds arbitrarily nested
payloads *together with* their independently-computed size — each leaf is
generated as a ``(value, size)`` pair and containers sum their children —
and asserts the meter agrees exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.parallel import shipped_nbytes

_SCALAR_DTYPES = [
    np.dtype(np.int8),
    np.dtype(np.uint16),
    np.dtype(np.int32),
    np.dtype(np.int64),
    np.dtype(np.uint64),
    np.dtype(np.float32),
    np.dtype(np.float64),
    np.dtype(np.bool_),
]


def _numpy_scalars():
    def build(dtype, value):
        # Wrap into the dtype's scalar type; sizes come from the dtype, not
        # from the meter under test.
        return (dtype.type(value), dtype.itemsize)

    return st.tuples(
        st.sampled_from(_SCALAR_DTYPES), st.integers(min_value=0, max_value=100)
    ).map(lambda t: build(*t))


def _arrays():
    def build(dtype, length):
        arr = np.arange(length).astype(dtype)
        return (arr, arr.nbytes)

    return st.tuples(
        st.sampled_from(_SCALAR_DTYPES), st.integers(min_value=0, max_value=32)
    ).map(lambda t: build(*t))


_LEAVES = st.one_of(
    st.just((None, 0)),
    st.booleans().map(lambda b: (b, 8)),
    st.integers(min_value=-(2**62), max_value=2**62).map(lambda i: (i, 8)),
    st.floats(allow_nan=False, allow_infinity=False).map(lambda f: (f, 8)),
    st.text(max_size=16).map(lambda s: (s, len(s.encode("utf-8")))),
    st.binary(max_size=16).map(lambda b: (b, len(b))),
    _numpy_scalars(),
    _arrays(),
)


def _containers(children):
    def as_list(pairs):
        return ([value for value, _ in pairs], sum(size for _, size in pairs))

    def as_tuple(pairs):
        return (tuple(value for value, _ in pairs), sum(size for _, size in pairs))

    def as_dict(pairs):
        # Dict keys are metadata, not payload: only values are charged.
        return (
            {f"k{i}": value for i, (value, _) in enumerate(pairs)},
            sum(size for _, size in pairs),
        )

    pair_lists = st.lists(children, max_size=5)
    return st.one_of(
        pair_lists.map(as_list), pair_lists.map(as_tuple), pair_lists.map(as_dict)
    )


_PAYLOADS = st.recursive(_LEAVES, _containers, max_leaves=40)


@given(_PAYLOADS)
@settings(max_examples=150, deadline=None)
def test_meter_equals_sum_of_element_sizes(payload_and_size):
    payload, expected = payload_and_size
    assert shipped_nbytes(payload) == expected


def test_numpy_scalars_charged_by_itemsize():
    # Regression: every numeric scalar used to cost a flat 8-byte word.
    assert shipped_nbytes(np.float32(1.5)) == 4
    assert shipped_nbytes(np.int8(-3)) == 1
    assert shipped_nbytes(np.uint16(9)) == 2
    assert shipped_nbytes(np.bool_(True)) == 1
    assert shipped_nbytes(np.float64(2.5)) == 8
    assert shipped_nbytes(np.int64(7)) == 8
    # Plain Python scalars keep the 8-byte word.
    assert shipped_nbytes(True) == 8
    assert shipped_nbytes(42) == 8
    assert shipped_nbytes(2.5) == 8


def test_unsupported_payloads_are_loud():
    with pytest.raises(TypeError):
        shipped_nbytes({"bad": object()})
    with pytest.raises(TypeError):
        shipped_nbytes(np.array([object()]))

"""Property-based tests for coloring, aggregation and the segmented primitives."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coarsen import (
    aggregate_quality,
    coarse_graph,
    d2c_aggregation,
    mis2_aggregation,
    mis2_basic_aggregation,
)
from repro.coloring import distance2_color, greedy_color, is_valid_coloring
from repro.mis import is_independent_set
from repro.parallel import exclusive_scan, segmented_min, segmented_sum

from tests.properties.strategies import graphs

COMMON = dict(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(graphs())
@settings(**COMMON)
def test_greedy_coloring_is_always_valid(graph):
    result = greedy_color(graph)
    assert is_valid_coloring(graph, result.colors, distance=1)
    assert result.num_colors <= graph.max_degree() + 1


@given(graphs(max_vertices=18))
@settings(**COMMON)
def test_distance2_color_classes_are_d2_independent(graph):
    result = distance2_color(graph)
    assert is_valid_coloring(graph, result.colors, distance=2)
    for cls in result.color_classes():
        assert is_independent_set(graph, cls, k=2)


@given(graphs(max_vertices=18))
@settings(**COMMON)
def test_aggregations_are_complete_partitions(graph):
    for fn in (mis2_basic_aggregation, mis2_aggregation, d2c_aggregation):
        agg = fn(graph)
        assert agg.is_complete()
        if graph.num_vertices:
            assert agg.sizes().sum() == graph.num_vertices
            quality = aggregate_quality(agg)
            assert quality.min_size >= 1


@given(graphs(max_vertices=18))
@settings(**COMMON)
def test_coarse_graph_is_smaller_and_consistent(graph):
    if graph.num_vertices == 0:
        return
    agg = mis2_aggregation(graph)
    cg = coarse_graph(graph, agg)
    assert cg.num_vertices == agg.num_aggregates
    assert cg.num_vertices <= graph.num_vertices
    # Every coarse edge corresponds to at least one fine edge between the aggregates.
    labels = agg.labels
    fine_pairs = {
        (min(int(labels[u]), int(labels[v])), max(int(labels[u]), int(labels[v])))
        for u, v in graph.iter_edges()
        if labels[u] != labels[v]
    }
    coarse_pairs = {(min(a, b), max(a, b)) for a, b in cg.iter_edges()}
    assert coarse_pairs == fine_pairs


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=40))
@settings(max_examples=100, deadline=None)
def test_segmented_reductions_match_python(lengths):
    seg = exclusive_scan(np.asarray(lengths, dtype=np.int64))
    total = int(seg[-1])
    rng = np.random.default_rng(42)
    values = rng.integers(0, 1000, size=total)
    sums = segmented_sum(values, seg)
    mins = segmented_min(values, seg, identity=10**9)
    for j, length in enumerate(lengths):
        chunk = values[seg[j]: seg[j + 1]]
        assert sums[j] == chunk.sum()
        assert mins[j] == (chunk.min() if length else 10**9)


@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=60))
@settings(max_examples=100, deadline=None)
def test_exclusive_scan_properties(values):
    arr = np.asarray(values, dtype=np.int64)
    out = exclusive_scan(arr)
    assert out.size == arr.size + 1
    assert out[0] == 0
    assert out[-1] == arr.sum()
    assert np.array_equal(np.diff(out), arr)

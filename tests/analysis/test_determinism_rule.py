"""Determinism rule family: fixtures fire, legal idioms stay quiet."""

from repro.analysis.determinism import DeterminismRule

from .helpers import check, load, rule_ids

RULE = DeterminismRule()


def _run(name, module="repro.mis.fixture"):
    return check(RULE, load(f"determinism/{name}", module))


def test_wallclock_fires():
    findings = _run("bad_wallclock.py")
    assert rule_ids(findings) == ["det-wallclock"] * 3
    assert len({f.line for f in findings}) == 3


def test_random_fires():
    assert rule_ids(_run("bad_random.py")) == ["det-random"] * 5


def test_set_iteration_fires():
    findings = _run("bad_set_iter.py")
    assert rule_ids(findings) == ["det-set-iter"] * 3


def test_id_order_fires():
    assert rule_ids(_run("bad_id_order.py")) == ["det-id-order"] * 2


def test_good_idioms_stay_quiet():
    # perf_counter, seeded default_rng, membership tests, sorted()/sum()/len()
    # folds over sets are all legal.
    assert _run("good_clean.py") == []


def test_all_seed_scopes_fire():
    for module in (
        "repro.mis.fixture",
        "repro.coloring.fixture",
        "repro.coarsen.fixture",
        "repro.parallel.partitioned",
        "repro.service.repair",
    ):
        assert rule_ids(_run("bad_id_order.py", module)) == ["det-id-order"] * 2


def test_module_outside_scope_is_ignored():
    # The same wall-clock reads are legal in a module no deterministic kernel
    # imports (bench drivers, transport deadlines, ...).
    assert _run("bad_wallclock.py", module="repro.bench.tool") == []
    assert _run("bad_wallclock.py", module="tools.script") == []

"""Engine behaviour: module naming, suppressions, baselines, reachability."""

import pytest

from repro.analysis.determinism import DeterminismRule
from repro.analysis.engine import AnalysisContext, run_analysis
from repro.analysis.findings import (
    Finding,
    apply_baseline,
    load_baseline,
    parse_suppressions,
    write_baseline,
)
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.modules import ModuleInfo, module_name_for_path


# ------------------------------------------------------------- module naming
@pytest.mark.parametrize(
    "path, expected",
    [
        ("src/repro/mis/kk.py", "repro.mis.kk"),
        ("src/repro/parallel/__init__.py", "repro.parallel"),
        ("/abs/checkout/src/repro/service/core.py", "repro.service.core"),
        ("repro/analysis/engine.py", "repro.analysis.engine"),
        ("tools/script.py", "tools.script"),
    ],
)
def test_module_name_for_path(path, expected):
    assert module_name_for_path(path) == expected


# --------------------------------------------------------------- suppressions
def test_suppression_parsing_justified_and_not():
    source = (
        "x = 1  # analysis-ok: lock-guard -- at-fork child is single-threaded\n"
        "y = 2  # analysis-ok: det-set-iter, det-id-order -- proven order-free\n"
        "z = 3  # analysis-ok: lock-guard\n"
    )
    sups = parse_suppressions(source)
    assert [s.line for s in sups] == [1, 2, 3]
    assert sups[0].justified and sups[0].rules == ("lock-guard",)
    assert sups[1].rules == ("det-set-iter", "det-id-order")
    assert not sups[2].justified


def test_suppression_in_docstring_is_ignored():
    source = '"""Docs show the format: # analysis-ok: lock-guard -- why."""\nx = 1\n'
    assert parse_suppressions(source) == []


LOCKED_BAD = """\
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self.count += 1{suffix}
"""


def _context(suffix=""):
    info = ModuleInfo.from_source(
        LOCKED_BAD.format(suffix=suffix), path="fix/store.py", module="fix.store"
    )
    return AnalysisContext([info])


def test_justified_suppression_removes_finding():
    report = run_analysis(
        context=_context("  # analysis-ok: lock-guard -- benign in this fixture"),
        rules=[LockDisciplineRule()],
    )
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["lock-guard"]


def test_unjustified_suppression_keeps_finding_and_reports_it():
    report = run_analysis(
        context=_context("  # analysis-ok: lock-guard"),
        rules=[LockDisciplineRule()],
    )
    assert sorted(f.rule for f in report.findings) == ["bad-suppression", "lock-guard"]


def test_suppression_for_other_rule_does_not_apply():
    report = run_analysis(
        context=_context("  # analysis-ok: det-set-iter -- wrong rule id"),
        rules=[LockDisciplineRule()],
    )
    assert [f.rule for f in report.findings] == ["lock-guard"]


# ------------------------------------------------------------------ baselines
def test_baseline_round_trip_and_line_independence(tmp_path):
    finding = Finding(path="a.py", line=10, rule="lock-guard", message="msg")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), [finding])
    keys = load_baseline(str(baseline_file))

    moved = Finding(path="a.py", line=99, rule="lock-guard", message="msg")
    other = Finding(path="a.py", line=10, rule="lock-guard", message="different")
    fresh, matched = apply_baseline([moved, other], keys)
    assert matched == [moved]  # same identity, line ignored
    assert fresh == [other]


def test_baseline_is_a_multiset():
    finding = Finding(path="a.py", line=1, rule="r", message="m")
    twice = Finding(path="a.py", line=2, rule="r", message="m")
    fresh, matched = apply_baseline([finding, twice], {finding.baseline_key: 1})
    assert len(matched) == 1 and len(fresh) == 1


def test_baseline_via_run_analysis():
    context = _context()
    first = run_analysis(context=context, rules=[LockDisciplineRule()])
    assert len(first.findings) == 1
    keys = {f.baseline_key: 1 for f in first.findings}
    second = run_analysis(context=_context(), rules=[LockDisciplineRule()], baseline=keys)
    assert second.findings == [] and len(second.baselined) == 1


def test_load_baseline_rejects_unknown_version(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"version": 99, "findings": []}')
    with pytest.raises(ValueError):
        load_baseline(str(bad))


# --------------------------------------------------------------- reachability
def _mini_corpus(partitioned_src):
    return [
        ModuleInfo.from_source(
            "from .transport import connect\nfrom . import partitioned\n",
            path="src/repro/parallel/__init__.py",
            module="repro.parallel",
        ),
        ModuleInfo.from_source(
            partitioned_src,
            path="src/repro/parallel/partitioned.py",
            module="repro.parallel.partitioned",
        ),
        ModuleInfo.from_source(
            "", path="src/repro/parallel/primitives.py",
            module="repro.parallel.primitives",
        ),
        ModuleInfo.from_source(
            "import time\n\n\ndef deadline():\n    return time.monotonic()\n",
            path="src/repro/parallel/transport.py",
            module="repro.parallel.transport",
        ),
    ]


def test_sibling_import_does_not_drag_in_package_init_deps():
    # `from . import primitives` depends on the submodule, NOT on the package
    # __init__ — transport's legitimate deadline timing stays out of the
    # determinism scope.
    context = AnalysisContext(_mini_corpus("from . import primitives as _ref\n"))
    scope = context.reachable_from(["repro.parallel.partitioned"])
    assert "repro.parallel.primitives" in scope
    assert "repro.parallel.transport" not in scope
    report = run_analysis(context=context, rules=[DeterminismRule()])
    assert report.findings == []


def test_direct_import_of_transport_is_in_scope():
    context = AnalysisContext(_mini_corpus("from .transport import connect\n"))
    scope = context.reachable_from(["repro.parallel.partitioned"])
    assert "repro.parallel.transport" in scope
    report = run_analysis(context=context, rules=[DeterminismRule()])
    assert [f.rule for f in report.findings] == ["det-wallclock"]


# -------------------------------------------------------------------- by_path
def test_context_indexes_modules_by_path():
    context = AnalysisContext(_mini_corpus(""))
    info = context.by_path["src/repro/parallel/transport.py"]
    assert info.module == "repro.parallel.transport"
    assert set(context.by_path) == {m.path for m in context.modules}


# ----------------------------------------------------------------------- jobs
def _repo_src():
    from pathlib import Path

    return str(Path(__file__).resolve().parents[2] / "src" / "repro")


def test_jobs_report_is_identical_to_serial():
    serial = run_analysis(paths=[_repo_src()])
    parallel = run_analysis(paths=[_repo_src()], jobs=4)
    assert parallel.findings == serial.findings
    assert parallel.suppressed == serial.suppressed
    assert parallel.baselined == serial.baselined
    assert parallel.modules_checked == serial.modules_checked
    assert json_dump(parallel) == json_dump(serial)


def json_dump(report):
    import json

    return json.dumps(report.to_dict(), sort_keys=True)


def test_jobs_with_custom_rules_falls_back_to_serial():
    # Custom rule instances cannot cross the process boundary; the engine
    # must still honour them (serially) rather than silently dropping them.
    report = run_analysis(
        context=_context(), rules=[LockDisciplineRule()], jobs=4
    )
    assert [f.rule for f in report.findings] == ["lock-guard"]


def test_jobs_larger_than_corpus_is_fine():
    context = AnalysisContext(_mini_corpus(""))
    paths = {m.path: m.source for m in context.modules}
    import tempfile, os

    with tempfile.TemporaryDirectory() as tmp:
        tree = os.path.join(tmp, "src", "repro", "parallel")
        os.makedirs(tree)
        for path, source in paths.items():
            with open(os.path.join(tree, os.path.basename(path)), "w") as fh:
                fh.write(source)
        serial = run_analysis(paths=[tree])
        wide = run_analysis(paths=[tree], jobs=32)
    assert wide.findings == serial.findings
    assert wide.modules_checked == serial.modules_checked

"""CFG construction: block structure, edges, and with-exit bookkeeping."""

import ast

from repro.analysis.cfg import build_cfg


def _func(source: str):
    tree = ast.parse(source)
    return tree.body[0]


def _reachable(cfg):
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        for succ in cfg.block(frontier.pop()).succs:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def test_straight_line_single_block():
    cfg = build_cfg(_func("def f():\n    a = 1\n    b = 2\n"))
    entry = cfg.block(cfg.entry)
    assert [kind for kind, _ in entry.steps] == ["stmt", "stmt"]
    assert entry.succs == [cfg.exit_index]


def test_if_branches_rejoin():
    cfg = build_cfg(_func(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    ))
    entry = cfg.block(cfg.entry)
    assert len(entry.succs) == 2
    assert cfg.exit_index in _reachable(cfg)


def test_if_without_else_falls_through():
    cfg = build_cfg(_func("def f(x):\n    if x:\n        a = 1\n    b = 2\n"))
    entry = cfg.block(cfg.entry)
    # Edges to the then-block and (fall-through) to the join.
    assert len(entry.succs) == 2


def test_while_has_back_edge():
    cfg = build_cfg(_func("def f(x):\n    while x:\n        x -= 1\n    return x\n"))
    preds = cfg.preds()
    # some block (the loop head) has >= 2 predecessors: entry and body end
    assert any(len(p) >= 2 for p in preds.values())


def test_return_reaches_exit():
    cfg = build_cfg(_func("def f():\n    return 1\n    unreachable = 2\n"))
    entry = cfg.block(cfg.entry)
    assert cfg.exit_index in entry.succs
    # The trailing dead statement still lands in a block for replay.
    all_steps = [s for b in cfg.blocks for s in b.steps]
    assert any(
        kind == "stmt" and isinstance(node, ast.Assign)
        for kind, node in all_steps
    )


def test_with_emits_enter_and_exit():
    cfg = build_cfg(_func(
        "def f(lock):\n"
        "    with lock:\n"
        "        a = 1\n"
        "    b = 2\n"
    ))
    kinds = [kind for b in cfg.blocks for kind, _ in b.steps]
    assert kinds.count("with_enter") == 1
    assert kinds.count("with_exit") == 1
    enter = kinds.index("with_enter")
    assert kinds.index("with_exit") > enter


def test_return_inside_with_exits_the_with():
    cfg = build_cfg(_func(
        "def f(lock):\n"
        "    with lock:\n"
        "        return 1\n"
    ))
    kinds = [kind for b in cfg.blocks for kind, _ in b.steps]
    assert kinds.count("with_exit") == 1


def test_break_inside_with_exits_only_inner_with():
    cfg = build_cfg(_func(
        "def f(a, b):\n"
        "    with a:\n"
        "        while True:\n"
        "            with b:\n"
        "                break\n"
        "    tail = 1\n"
    ))
    # break leaves the inner with (opened inside the loop) but not the outer;
    # the outer with releases once, on the normal fall-through path.  The
    # inner body always breaks, so exactly two exits exist in total.
    exits = [
        node for blk in cfg.blocks for kind, node in blk.steps if kind == "with_exit"
    ]
    assert len(exits) == 2
    assert exits[0] is not exits[1]


def test_try_handler_reachable_from_body_entry():
    cfg = build_cfg(_func(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        handle()\n"
        "    done()\n"
    ))
    assert cfg.exit_index in _reachable(cfg)
    entry = cfg.block(cfg.entry)
    # entry must have an edge into the handler region (pre-body exception)
    assert len(entry.succs) >= 2


def test_module_body_accepted():
    tree = ast.parse("x = 1\ny = 2\n")
    cfg = build_cfg(tree)
    assert len(cfg.block(cfg.entry).steps) == 2


def test_raw_statement_list_accepted():
    tree = ast.parse("x = 1\n")
    cfg = build_cfg(tree.body)
    assert len(cfg.block(cfg.entry).steps) == 1

"""Dataflow engine: fixpoint behaviour on small lock-style analyses."""

import ast

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ForwardAnalysis, block_out, run_forward

TOP = frozenset({"<top>"})


class MustDefined(ForwardAnalysis):
    """Names assigned on *every* path (join = intersection)."""

    def entry_state(self):
        return frozenset()

    def unreachable(self):
        return TOP

    def join(self, a, b):
        if a == TOP:
            return b
        if b == TOP:
            return a
        return a & b

    def transfer(self, state, step):
        kind, node = step
        if kind == "stmt" and isinstance(node, ast.Assign):
            names = {
                t.id for t in node.targets if isinstance(t, ast.Name)
            }
            return state | frozenset(names)
        return state


def _exit_state(source: str):
    func = ast.parse(source).body[0]
    cfg = build_cfg(func)
    analysis = MustDefined()
    states = run_forward(cfg, analysis)
    return states[cfg.exit_index]


def test_straight_line_accumulates():
    state = _exit_state("def f():\n    a = 1\n    b = 2\n")
    assert state == frozenset({"a", "b"})


def test_branch_join_is_intersection():
    state = _exit_state(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "        b = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    c = 3\n"
    )
    assert "a" in state and "c" in state
    assert "b" not in state  # only assigned on one path


def test_loop_body_not_guaranteed():
    state = _exit_state(
        "def f(xs):\n"
        "    for x in xs:\n"
        "        inside = 1\n"
        "    after = 2\n"
    )
    assert "after" in state
    assert "inside" not in state  # zero-iteration path skips the body


def test_loop_reaches_fixpoint():
    # The back edge must not oscillate: the analysis terminates and the
    # pre-loop assignment survives every iteration count.
    state = _exit_state(
        "def f(xs):\n"
        "    acc = 0\n"
        "    for x in xs:\n"
        "        acc = 1\n"
        "    return acc\n"
    )
    assert "acc" in state


def test_block_out_replays_steps():
    func = ast.parse("def f():\n    a = 1\n").body[0]
    cfg = build_cfg(func)
    analysis = MustDefined()
    out = block_out(analysis, frozenset(), cfg.block(cfg.entry).steps)
    assert out == frozenset({"a"})


def test_unreached_blocks_get_unreachable_state():
    func = ast.parse(
        "def f():\n    return 1\n    dead = 2\n"
    ).body[0]
    cfg = build_cfg(func)
    states = run_forward(cfg, MustDefined())
    assert all(index in states for index in range(len(cfg.blocks)))

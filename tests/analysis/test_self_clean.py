"""The analyzer must hold its own tree to the contracts it enforces."""

from repro.analysis import run_analysis
from repro.analysis.engine import load_corpus

from .helpers import REPO_SRC


def test_src_repro_has_zero_unsuppressed_findings():
    report = run_analysis(paths=[str(REPO_SRC)])
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
    assert report.modules_checked > 90


def test_every_in_tree_suppression_is_justified():
    context = load_corpus([str(REPO_SRC)])
    for info in context.modules:
        for sup in info.suppressions:
            assert sup.justified, f"{info.path}:{sup.line} lacks a justification"


def test_the_tree_actually_exercises_the_lock_rule():
    # Guard against the annotations being silently dropped: the modules the
    # issue names must still declare guarded state.
    context = load_corpus([str(REPO_SRC)])
    from repro.analysis.locks import parse_annotations

    annotated = {
        info.module
        for info in context.modules
        if parse_annotations(info).attr_locks or parse_annotations(info).global_locks
    }
    assert {
        "repro.service.core",
        "repro.parallel.distributed",
        "repro.parallel.backends",
    } <= annotated

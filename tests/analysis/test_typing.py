"""mypy over the typed subset (transport, service, analysis).

Runs only where mypy is installed (the lint-analysis CI job installs it; the
base test environment may not have it), using the committed setup.cfg so the
gate and the local run can never drift apart.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO = Path(__file__).resolve().parents[2]


def test_typed_subset_is_mypy_clean(monkeypatch):
    monkeypatch.chdir(REPO)  # setup.cfg lists its files relative to the root
    out, err, status = mypy_api.run(
        ["--config-file", "setup.cfg", "--no-error-summary"]
    )
    assert status == 0, f"mypy errors:\n{out}\n{err}"

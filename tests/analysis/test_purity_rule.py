"""Purity rule: picklable seam callables, no hard-wired concrete backends."""

from repro.analysis.purity import PurityRule

from .helpers import check, load, rule_ids

RULE = PurityRule()


def test_lambdas_at_the_seam_fire():
    findings = check(RULE, load("purity/bad_lambda.py", "repro.parallel.driver"))
    assert rule_ids(findings) == ["pickle-callable"] * 2


def test_nested_functions_fire_directly_and_through_partial():
    findings = check(RULE, load("purity/bad_nested.py", "repro.parallel.driver"))
    assert rule_ids(findings) == ["pickle-callable"] * 2


def test_concrete_backend_outside_registry_fires():
    findings = check(RULE, load("purity/bad_backend.py", "repro.mis.fixture"))
    assert rule_ids(findings) == ["backend-concrete"]


def test_registry_modules_may_instantiate_backends():
    assert check(RULE, load("purity/bad_backend.py", "repro.parallel.backends")) == []


def test_good_seam_idioms_stay_quiet():
    assert check(RULE, load("purity/good_purity.py", "repro.coloring.driver")) == []


def test_non_repro_modules_are_out_of_scope():
    assert check(RULE, load("purity/bad_lambda.py", "tools.script")) == []

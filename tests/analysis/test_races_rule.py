"""Lockset-inference race rule: fixtures, real-tree spot checks, filters."""

from repro.analysis.races import RaceRule, thread_entry_targets

from .helpers import REPO_SRC, check, load, rule_ids

from repro.analysis.modules import ModuleInfo


def _check(relpath: str, module: str = "repro.service.fixture"):
    return check(RaceRule(), load(f"races/{relpath}", module))


# ------------------------------------------------------------------- bad twins
def test_unguarded_stats_fires():
    findings = _check("bad_unguarded_stats.py")
    assert "race-unguarded-write" in rule_ids(findings)
    assert any("Service.stats" in f.message for f in findings)


def test_set_seeded_heap_fires():
    findings = _check("bad_set_heap.py")
    assert "race-unguarded-write" in rule_ids(findings)
    assert any("_heap" in f.message for f in findings)


def test_inconsistent_lockset_fires():
    findings = _check("bad_inconsistent.py")
    assert rule_ids(findings) == ["race-inconsistent-lockset"]
    assert "_entries" in findings[0].message


def test_annotation_mismatch_fires():
    findings = _check("bad_annotation_mismatch.py")
    assert rule_ids(findings) == ["race-annotation-mismatch"]
    assert "_a_lock" in findings[0].message
    assert "_b_lock" in findings[0].message


def test_missing_annotation_suggests_lock():
    findings = _check("bad_missing_annotation.py")
    assert rule_ids(findings) == ["race-missing-annotation"]
    assert "# guarded-by: _lock" in findings[0].message


def test_finding_anchors_on_declaring_init_line():
    findings = _check("bad_unguarded_stats.py")
    source = (load("races/bad_unguarded_stats.py", "x").source).splitlines()
    flagged = source[findings[0].line - 1]
    assert "self.stats" in flagged


# ------------------------------------------------------------------ good twins
def test_consistently_guarded_is_quiet():
    assert _check("good_guarded.py") == []


def test_init_only_publish_is_quiet():
    assert _check("good_init_publish.py") == []


def test_threadsafe_queue_is_quiet():
    assert _check("good_queue.py") == []


def test_module_without_thread_entries_is_quiet():
    # The same racy code is fine when nothing ever runs it on another thread.
    source_info = load("races/bad_unguarded_stats.py", "repro.service.fixture")
    info = ModuleInfo.from_source(
        source_info.source.replace("threading.Thread", "RecordedPlan"),
        path=source_info.path,
        module=source_info.module,
    )
    assert check(RaceRule(), info) == []


def test_non_repro_module_is_skipped():
    assert _check("bad_unguarded_stats.py", module="other.pkg") == []


# ------------------------------------------------------------- entry discovery
def test_thread_entry_discovery_sees_thread_target():
    info = load("races/bad_unguarded_stats.py", "repro.service.fixture")
    assert ("Service", "_dispatch_loop") in thread_entry_targets(info)


def test_real_service_core_has_dispatcher_entry():
    info = ModuleInfo.from_path(
        str(REPO_SRC / "service" / "core.py"), module="repro.service.core"
    )
    assert ("GraphService", "_dispatch_loop") in thread_entry_targets(info)


def test_real_tree_is_clean():
    # The analyzer gates the repo on itself; the shipped sources must pass
    # the race rule without suppressions (core.py carries the annotations).
    from repro.analysis.engine import load_corpus

    context = load_corpus([str(REPO_SRC)])
    rule = RaceRule()
    findings = []
    for info in context.modules:
        findings.extend(rule.check(info, context))
    assert findings == []

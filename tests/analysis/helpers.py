"""Shared loaders for the analyzer test-suite fixtures."""

from pathlib import Path
from typing import List

from repro.analysis.engine import AnalysisContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.modules import ModuleInfo

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def load(relpath: str, module: str) -> ModuleInfo:
    """Load a fixture file under the given (possibly fictional) module name."""
    return ModuleInfo.from_path(str(FIXTURES / relpath), module=module)


def check(rule: Rule, *infos: ModuleInfo) -> List[Finding]:
    """Run one rule over a corpus of the given modules, sorted findings."""
    context = AnalysisContext(list(infos))
    out: List[Finding] = []
    for info in context.modules:
        out.extend(rule.check(info, context))
    return sorted(out)


def rule_ids(findings: List[Finding]) -> List[str]:
    return [f.rule for f in findings]

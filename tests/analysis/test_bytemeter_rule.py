"""Byte-meter rule: sockets/pickle flagged everywhere except the transport."""

from repro.analysis.bytemeter import ByteMeterRule

from .helpers import check, load, rule_ids

RULE = ByteMeterRule()


def test_socket_outside_transport_fires():
    findings = check(RULE, load("bytemeter/bad_socket.py", "repro.parallel.phases"))
    assert rule_ids(findings) == ["bytes-socket"]
    assert "shipped_nbytes" in findings[0].message


def test_pickle_outside_transport_fires():
    findings = check(RULE, load("bytemeter/bad_pickle.py", "repro.service.wire"))
    assert rule_ids(findings) == ["bytes-pickle", "bytes-pickle"]


def test_transport_module_is_exempt():
    assert check(RULE, load("bytemeter/bad_socket.py", "repro.parallel.transport")) == []
    assert check(RULE, load("bytemeter/bad_pickle.py", "repro.parallel.transport")) == []


def test_non_repro_modules_are_out_of_scope():
    assert check(RULE, load("bytemeter/bad_socket.py", "tools.script")) == []

"""Fixture: raw socket use outside the transport seam (expect bytes-socket x1
when loaded as a repro.* module other than repro.parallel.transport)."""

import socket


def probe(addr):
    sock = socket.create_connection(addr)
    sock.sendall(b"ping")
    return sock.recv(4)

"""Fixture: unmetered pickling (expect bytes-pickle x2: the import and the
dumps call)."""

import pickle


def ship(value):
    return pickle.dumps(value)

"""Fixture: wall-clock reads in a deterministic module (expect det-wallclock x3)."""

import time
from time import monotonic  # noqa: F401


def stamp():
    return time.time()


def deadline():
    return time.monotonic() + 5.0

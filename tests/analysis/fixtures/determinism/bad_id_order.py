"""Fixture: ordering by CPython addresses (expect det-id-order x2)."""


def order_objects(objs):
    return sorted(objs, key=id)


def token(obj):
    return id(obj)

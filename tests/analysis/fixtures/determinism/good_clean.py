"""Fixture: the deterministic idioms the rule must stay quiet on."""

from time import perf_counter

import numpy as np


def timed(fn):
    t0 = perf_counter()
    out = fn()
    return out, perf_counter() - t0


def keys(n, seed):
    rng = np.random.default_rng(seed)
    return rng.permutation(n)


def drain(dirty):
    pending = {int(v) for v in dirty}
    order = []
    for v in sorted(pending):
        if v in pending:
            order.append(v)
    return order, sum(pending), len(pending)

"""Fixture: nondeterministic randomness (expect det-random x5)."""

import random

import numpy as np
from numpy.random import default_rng


def shuffle(items):
    random.shuffle(items)
    return items


def noise(n):
    return np.random.rand(n)


def unseeded():
    return default_rng()


def unseeded_np():
    return np.random.default_rng()

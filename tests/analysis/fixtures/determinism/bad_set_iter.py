"""Fixture: iterating bare sets where order leaks (expect det-set-iter x3)."""


def drain(dirty):
    pending = {int(v) for v in dirty}
    order = [v for v in pending]
    for v in pending:
        order.append(v)
    return list(pending), order

"""Platform-default-int hazards: bare arange and dtype=int."""

import numpy as np


def vertex_ids(n):
    return np.arange(n)


def zero_labels(n):
    return np.zeros(n, dtype=int)


def relabel(labels):
    return labels.astype(int)

"""PR 4 bug class: unqualified cumsum promotes sub-64-bit ints platform-wide."""

import numpy as np


def row_offsets(counts):
    lens = np.asarray(counts, dtype=np.uint32)
    return np.cumsum(lens)


def running_total(flags):
    mask = np.asarray(flags, dtype=np.bool_)
    return mask.cumsum()

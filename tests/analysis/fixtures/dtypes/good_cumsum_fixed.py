"""Clean twin of the PR 4 bug: the empty-slice probe pins the promoted dtype."""

import numpy as np


def row_offsets(counts):
    lens = np.asarray(counts, dtype=np.uint32)
    return np.cumsum(lens, dtype=np.cumsum(lens[:0]).dtype)


def running_total(flags):
    mask = np.asarray(flags, dtype=np.bool_)
    return mask.cumsum(dtype=np.int64)

"""Clean twin: every integer dtype is spelled with an explicit width."""

import numpy as np


def vertex_ids(n):
    return np.arange(n, dtype=np.int64)


def zero_labels(n):
    return np.zeros(n, dtype=np.int64)


def relabel(labels):
    return labels.astype(np.int64)


def reference_scan(arr):
    # Unknown operand dtype: promotion cannot be proven, stays quiet.
    return np.cumsum(np.asarray(arr))

"""Backend overrides whose returned dtype diverges from the numpy reference."""

import numpy as np

from repro.parallel.backends import ExecutionBackend


class PinnedBackend(ExecutionBackend):
    def inclusive_scan(self, arr):
        out = np.zeros(arr.size, dtype=np.int64)
        np.cumsum(arr, dtype=np.int64, out=out)
        return out

    def stream_compact(self, values, mask):
        kept = values[mask]
        return kept.astype(np.float64)

    def row_lengths(self, indptr):
        return np.diff(indptr).astype(np.int32)

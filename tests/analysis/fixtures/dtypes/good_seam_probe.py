"""Clean twin: overrides derive output dtypes from their inputs."""

import numpy as np

from repro.parallel.backends import ExecutionBackend


class ProbedBackend(ExecutionBackend):
    def inclusive_scan(self, arr):
        out = np.empty(arr.size, dtype=np.cumsum(arr[:0]).dtype)
        np.cumsum(arr, out=out)
        return out

    def stream_compact(self, values, mask):
        kept = values[mask]
        return kept

    def row_lengths(self, indptr):
        return np.diff(indptr).astype(np.int64)

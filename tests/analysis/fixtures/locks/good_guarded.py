"""Fixture: every legal guarded-access shape — with block, holds annotation,
constructor exemption, early return inside the guarded block."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.count += 1

    def bump_locked(self):  # holds: _lock
        self.count += 1

    def reset(self, limit):
        with self._lock:
            if self.count > limit:
                self.count = 0
                return self.count
            return None

"""Fixture: guard nested under another with, and in a multi-item with
(expect clean)."""

import threading


class Store:
    def __init__(self):
        self._gate = threading.Lock()
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self, path):
        with self._gate:
            with self._lock:
                self.count += 1
            with open(path) as fh, self._lock:
                fh.write(str(self.count))

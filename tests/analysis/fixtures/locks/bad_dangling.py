"""Fixture: annotation comments that attach to nothing (expect
lock-annotation x2)."""

# guarded-by: _lock

VALUE = 1
counter = 0  # holds: _lock

"""Fixture: alias rebound to a different object is no longer a guard
(expect lock-guard x1)."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self, other):
        lk = self._lock
        lk = other
        with lk:
            self.count += 1

"""Fixture: guarded module global — one locked access, one not
(expect lock-guard x1 in drop)."""

import threading

_LOCK = threading.Lock()
_POOLS = {}  # guarded-by: _LOCK


def get(key):
    with _LOCK:
        return _POOLS.get(key)


def drop(key):
    _POOLS.pop(key, None)

"""Fixture: guarded attribute touched without the lock (expect lock-guard x1)."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self.count += 1

"""Fixture: lock held through a single-assignment alias (expect clean)."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        lk = self._lock
        with lk:
            self.count += 1

"""Fixture: manual acquire/release is deliberately NOT recognised as holding
the lock — the contract is the with statement (expect lock-guard x1)."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self._lock.acquire()
        try:
            self.count += 1
        finally:
            self._lock.release()

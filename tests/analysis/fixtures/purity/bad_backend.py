"""Fixture: hard-wiring a concrete backend inside a kernel (expect
backend-concrete x1 outside the registry modules, clean inside them)."""


def _noop(graph):
    return graph


def kernel(graph):
    from repro.parallel.backends import ChunkedBackend

    backend = ChunkedBackend()
    return backend.map_graphs(_noop, [graph])

"""Fixture: lambdas crossing the seam (expect pickle-callable x2)."""


def go(session, tasks):
    return session.run_async(lambda part: part, tasks)


def fan(backend, graphs):
    return backend.map_graphs(lambda g: g, graphs)

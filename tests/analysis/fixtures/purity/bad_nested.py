"""Fixture: nested functions crossing the seam, directly and through partial
(expect pickle-callable x2)."""

from functools import partial


def driver(backend, graphs):
    def kernel(graph):
        return graph

    return backend.map_graphs(kernel, graphs)


def resident(session, tasks):
    def fn(state):
        return state

    return session.run_async(partial(fn, 1), tasks)

"""Fixture: the legal seam idioms — module-level callables, partial over a
module-level callable, backend resolved by name (expect clean)."""

from functools import partial


def _kernel(graph, scale=1):
    return graph


def drive(backend, graphs):
    return backend.map_graphs(_kernel, graphs)


def drive_partial(backend, graphs):
    return backend.map_graphs(partial(_kernel, scale=2), graphs)


def drive_resident(session, fn, tasks):
    return session.run_async(fn, tasks)

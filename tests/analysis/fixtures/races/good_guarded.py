"""Clean twin: every cross-thread access holds the annotated lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock
        self._thread = threading.Thread(target=self._tick, daemon=True)
        self._thread.start()

    def _tick(self):
        with self._lock:
            self.value += 1

    def bump(self):
        with self._lock:
            self.value += 1

"""PR 9 bug class: a work heap seeded from a set and mutated by two threads."""

import heapq
import threading


class RepairQueue:
    def __init__(self, dirty):
        seeds = {v for v in dirty}
        self._heap = [v for v in seeds]
        heapq.heapify(self._heap)
        self._worker = threading.Thread(target=self._drain, daemon=True)
        self._worker.start()

    def _drain(self):
        while self._heap:
            heapq.heappop(self._heap)

    def enqueue(self, vertex):
        heapq.heappush(self._heap, vertex)

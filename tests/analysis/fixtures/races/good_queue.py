"""Clean twin: queue.SimpleQueue synchronizes internally; no lock needed."""

import queue
import threading


class Pipeline:
    def __init__(self):
        self._queue = queue.SimpleQueue()
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def _drain(self):
        while True:
            self._queue.get()

    def submit(self, item):
        self._queue.put(item)

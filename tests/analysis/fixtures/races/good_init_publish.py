"""Clean twin: written only in __init__, read-only afterwards (safe publish)."""

import threading


class Config:
    def __init__(self, options):
        self.options = dict(options)
        self._thread = threading.Thread(target=self._watch, daemon=True)
        self._thread.start()

    def _watch(self):
        while self.options.get("active"):
            pass

    def describe(self):
        return sorted(self.options)

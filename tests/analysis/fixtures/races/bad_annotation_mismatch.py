"""The annotation names one lock; every access holds a different one."""

import threading


class Ledger:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()
        self.total = 0  # guarded-by: _a_lock
        self._thread = threading.Thread(target=self._accumulate, daemon=True)
        self._thread.start()

    def _accumulate(self):
        with self._b_lock:
            self.total += 1

    def add(self, amount):
        with self._b_lock:
            self.total += amount

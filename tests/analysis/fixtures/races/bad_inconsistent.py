"""One path takes the lock, another forgets it: empty lockset intersection."""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self._thread = threading.Thread(target=self._refresh, daemon=True)
        self._thread.start()

    def _refresh(self):
        with self._lock:
            self._entries["fresh"] = True

    def lookup(self, key):
        return self._entries.get(key)

"""PR 9 bug class: a stats object bumped from two threads with no lock."""

import threading


class Stats:
    def __init__(self):
        self.batches = 0
        self.queries = 0


class Service:
    def __init__(self):
        self.stats = Stats()
        self._thread = threading.Thread(target=self._dispatch_loop, daemon=True)
        self._thread.start()

    def _dispatch_loop(self):
        while True:
            self.stats.batches += 1

    def query(self):
        self.stats.queries += 1
        return self.stats.queries

"""Consistently guarded but never annotated: suggest the guarded-by comment."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0
        self._thread = threading.Thread(target=self._tick, daemon=True)
        self._thread.start()

    def _tick(self):
        with self._lock:
            self.value += 1

    def bump(self):
        with self._lock:
            self.value += 1

    def read(self):
        with self._lock:
            return self.value

"""Dtype-flow rule: promotion hazards, seam divergence, and clean twins."""

from repro.analysis.dtypes import DtypeRule

from .helpers import REPO_SRC, check, load, rule_ids


def _check(relpath: str, module: str = "repro.mis.fixture"):
    return check(DtypeRule(), load(f"dtypes/{relpath}", module))


# -------------------------------------------------------- size/platform twins
def test_cumsum_promotion_fires_for_both_spellings():
    findings = _check("bad_cumsum_promotion.py")
    assert rule_ids(findings) == ["dtype-size-dependent"] * 2
    assert "np.cumsum" in findings[0].message
    assert ".cumsum()" in findings[1].message


def test_probe_idiom_twin_is_quiet():
    assert _check("good_cumsum_fixed.py") == []


def test_platform_int_spellings_fire():
    findings = _check("bad_platform_int.py")
    assert rule_ids(findings) == ["dtype-size-dependent"] * 3
    messages = " ".join(f.message for f in findings)
    assert "np.arange" in messages
    assert "dtype=int" in messages


def test_explicit_width_twin_is_quiet():
    assert _check("good_explicit.py") == []


def test_promotion_scope_is_determinism_closure():
    # Outside the determinism closure the promotion hazard doesn't gate
    # bit-identity, so the same source stays quiet.
    assert _check("bad_cumsum_promotion.py", module="repro.bench.fixture") == []


# ------------------------------------------------------------------ seam twins
def test_pinned_backend_overrides_fire():
    findings = _check("bad_seam_pinned.py", module="repro.parallel.fixture")
    assert rule_ids(findings) == ["dtype-seam-divergence"] * 3
    messages = " ".join(f.message for f in findings)
    assert "inclusive_scan" in messages
    assert "stream_compact" in messages
    assert "row_lengths" in messages


def test_probed_backend_overrides_are_quiet():
    assert _check("good_seam_probe.py", module="repro.parallel.fixture") == []


def test_seam_rule_ignores_non_backend_classes():
    info = load("dtypes/bad_seam_pinned.py", "repro.parallel.fixture")
    source = info.source.replace("(ExecutionBackend)", "(object)")
    from repro.analysis.modules import ModuleInfo

    plain = ModuleInfo.from_source(source, path=info.path, module=info.module)
    assert check(DtypeRule(), plain) == []


# -------------------------------------------------------------- real-tree gate
def test_real_tree_is_clean():
    from repro.analysis.engine import load_corpus

    context = load_corpus([str(REPO_SRC)])
    rule = DtypeRule()
    findings = []
    for info in context.modules:
        findings.extend(rule.check(info, context))
    assert findings == []

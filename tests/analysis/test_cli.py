"""Tests for the `python -m repro.analysis` command-line interface."""

import json

import pytest

from repro.analysis.__main__ import main

from .helpers import REPO_SRC

BAD_SOURCE = """\
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self.count += 1
"""

CLEAN_SOURCE = """\
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.count += 1
"""


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "store.py"
    path.write_text(BAD_SOURCE)
    return path


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    path = tmp_path / "store.py"
    path.write_text(CLEAN_SOURCE)
    code = main([str(path)])
    assert code == 0
    assert "analysis clean" in capsys.readouterr().out


def test_cli_findings_exit_one_with_readable_report(bad_file, capsys):
    code = main([str(bad_file)])
    assert code == 1
    out = capsys.readouterr().out
    # file:line, rule id, message, suppression hint
    assert f"{bad_file}:10: [lock-guard]" in out
    assert "guarded by '_lock'" in out
    assert "# analysis-ok: lock-guard" in out
    assert "1 finding(s)" in out


def test_cli_json_report(bad_file, capsys):
    code = main(["--json", str(bad_file)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["modules_checked"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "lock-guard" and finding["line"] == 10


def test_cli_baseline_round_trip(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(bad_file)]) == 0
    assert "wrote 1 finding(s)" in capsys.readouterr().out

    code = main(["--baseline", str(baseline), str(bad_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "analysis clean" in out and "1 baselined" in out


def test_cli_bad_baseline_exits_two(bad_file, tmp_path, capsys):
    baseline = tmp_path / "broken.json"
    baseline.write_text("{}")
    assert main(["--baseline", str(baseline), str(bad_file)]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "det-wallclock", "det-set-iter", "lock-guard", "bytes-socket",
        "bytes-pickle", "pickle-callable", "backend-concrete",
        "race-unguarded-write", "race-inconsistent-lockset",
        "race-annotation-mismatch", "race-missing-annotation",
        "dtype-size-dependent", "dtype-seam-divergence",
    ):
        assert rule_id in out


def test_cli_explain_by_family_name(capsys):
    assert main(["--explain", "races"]) == 0
    out = capsys.readouterr().out
    assert "race-unguarded-write" in out
    assert "Lockset-inference race detection" in out
    assert "Example:" in out


def test_cli_explain_by_finding_id(capsys):
    assert main(["--explain", "dtype-size-dependent"]) == 0
    out = capsys.readouterr().out
    assert "dtype-flow" in out
    assert "platform" in out
    assert "Example:" in out


def test_cli_explain_every_shipped_family(capsys):
    from repro.analysis.engine import all_rules

    for rule in all_rules():
        assert main(["--explain", rule.name]) == 0
        out = capsys.readouterr().out
        assert rule.name in out and "Example:" in out


def test_cli_explain_unknown_rule_exits_two(capsys):
    assert main(["--explain", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err and "races" in err


def test_cli_jobs_output_matches_serial(capsys):
    code = main(["--json", str(REPO_SRC)])
    serial = capsys.readouterr().out
    assert code == 0
    code = main(["--json", "--jobs", "4", str(REPO_SRC)])
    parallel = capsys.readouterr().out
    assert code == 0
    assert parallel == serial


def test_cli_jobs_must_be_positive(bad_file, capsys):
    assert main(["--jobs", "0", str(bad_file)]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_sarif_writes_valid_log(bad_file, tmp_path, capsys):
    out_file = tmp_path / "report.sarif"
    code = main(["--sarif", str(out_file), str(bad_file)])
    assert code == 1  # findings still gate the exit status
    payload = json.loads(out_file.read_text())
    assert payload["version"] == "2.1.0"
    results = payload["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["lock-guard"]


def test_cli_rejects_unknown_flag():
    with pytest.raises(SystemExit):
        main(["--frobnicate"])


def test_repro_tree_is_clean_for_the_cli(capsys):
    """The committed tree must stay at zero unsuppressed findings — this is
    the same invariant the lint-analysis CI job gates."""
    code = main([str(REPO_SRC)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "analysis clean" in out

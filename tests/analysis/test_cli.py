"""Tests for the `python -m repro.analysis` command-line interface."""

import json

import pytest

from repro.analysis.__main__ import main

from .helpers import REPO_SRC

BAD_SOURCE = """\
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self.count += 1
"""

CLEAN_SOURCE = """\
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.count += 1
"""


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "store.py"
    path.write_text(BAD_SOURCE)
    return path


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    path = tmp_path / "store.py"
    path.write_text(CLEAN_SOURCE)
    code = main([str(path)])
    assert code == 0
    assert "analysis clean" in capsys.readouterr().out


def test_cli_findings_exit_one_with_readable_report(bad_file, capsys):
    code = main([str(bad_file)])
    assert code == 1
    out = capsys.readouterr().out
    # file:line, rule id, message, suppression hint
    assert f"{bad_file}:10: [lock-guard]" in out
    assert "guarded by '_lock'" in out
    assert "# analysis-ok: lock-guard" in out
    assert "1 finding(s)" in out


def test_cli_json_report(bad_file, capsys):
    code = main(["--json", str(bad_file)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["modules_checked"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "lock-guard" and finding["line"] == 10


def test_cli_baseline_round_trip(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(bad_file)]) == 0
    assert "wrote 1 finding(s)" in capsys.readouterr().out

    code = main(["--baseline", str(baseline), str(bad_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "analysis clean" in out and "1 baselined" in out


def test_cli_bad_baseline_exits_two(bad_file, tmp_path, capsys):
    baseline = tmp_path / "broken.json"
    baseline.write_text("{}")
    assert main(["--baseline", str(baseline), str(bad_file)]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "det-wallclock", "det-set-iter", "lock-guard", "bytes-socket",
        "bytes-pickle", "pickle-callable", "backend-concrete",
    ):
        assert rule_id in out


def test_cli_rejects_unknown_flag():
    with pytest.raises(SystemExit):
        main(["--frobnicate"])


def test_repro_tree_is_clean_for_the_cli(capsys):
    """The committed tree must stay at zero unsuppressed findings — this is
    the same invariant the lint-analysis CI job gates."""
    code = main([str(REPO_SRC)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "analysis clean" in out

"""SARIF emitter: schema validity, determinism, and result mapping."""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Finding
from repro.analysis.sarif import report_to_sarif, write_sarif

SCHEMA_PATH = Path(__file__).parent / "sarif-schema-2.1.0.json"


def _report():
    return AnalysisReport(
        findings=[
            Finding("src/repro/a.py", 10, "race-unguarded-write", "attr raced"),
            Finding("src/repro/b.py", 3, "dtype-size-dependent", "bare arange"),
        ],
        suppressed=[
            Finding("src/repro/c.py", 7, "lock-guard", "justified at-fork clear"),
        ],
        baselined=[
            Finding("src/repro/d.py", 1, "det-set-iter", "grandfathered"),
        ],
        modules_checked=4,
    )


def test_sarif_validates_against_2_1_0_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text())
    payload = report_to_sarif(_report())
    jsonschema.validate(payload, schema)


def test_sarif_top_level_shape():
    payload = report_to_sarif(_report())
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "repro-analysis"


def test_every_shipped_rule_id_is_in_the_catalogue():
    from repro.analysis.engine import all_rules

    payload = report_to_sarif(AnalysisReport())
    catalogue = {r["id"] for r in payload["runs"][0]["tool"]["driver"]["rules"]}
    for rule in all_rules():
        for rule_id in rule.ids:
            assert rule_id in catalogue
    assert "bad-suppression" in catalogue


def test_results_map_findings_with_location_and_level():
    payload = report_to_sarif(_report())
    results = payload["runs"][0]["results"]
    assert len(results) == 4
    first = results[0]
    assert first["ruleId"] == "race-unguarded-write"
    assert first["level"] == "error"
    assert first["message"]["text"] == "attr raced"
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/a.py"
    assert loc["region"]["startLine"] == 10


def test_suppressed_and_baselined_carry_suppressions():
    payload = report_to_sarif(_report())
    results = payload["runs"][0]["results"]
    kinds = [
        r.get("suppressions", [{}])[0].get("kind") for r in results
    ]
    assert kinds == [None, None, "inSource", "external"]


def test_write_sarif_is_deterministic(tmp_path):
    a, b = tmp_path / "a.sarif", tmp_path / "b.sarif"
    write_sarif(str(a), _report())
    write_sarif(str(b), _report())
    assert a.read_bytes() == b.read_bytes()


def test_zero_findings_is_still_a_valid_log():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text())
    payload = report_to_sarif(AnalysisReport())
    jsonschema.validate(payload, schema)
    assert payload["runs"][0]["results"] == []

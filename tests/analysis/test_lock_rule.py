"""Lock-discipline rule: guarded attributes, holds annotations, aliasing
edge cases (satellite: second-name lock, nested with, early return,
try/finally manual acquire)."""

from repro.analysis.locks import LockDisciplineRule

from .helpers import check, load, rule_ids

RULE = LockDisciplineRule()


def _run(name):
    return check(RULE, load(f"locks/{name}", f"fixtures.locks.{name[:-3]}"))


def test_unguarded_access_fires():
    findings = _run("bad_unguarded.py")
    assert rule_ids(findings) == ["lock-guard"]
    assert "guarded by '_lock'" in findings[0].message


def test_with_holds_constructor_and_early_return_are_clean():
    assert _run("good_guarded.py") == []


def test_lock_alias_is_recognised():
    assert _run("good_alias.py") == []


def test_reassigned_alias_is_not_a_guard():
    assert rule_ids(_run("bad_alias_reassigned.py")) == ["lock-guard"]


def test_nested_and_multi_item_with_are_clean():
    assert _run("good_nested_with.py") == []


def test_manual_acquire_release_is_not_recognised():
    # Deliberate: the contract is the with statement; try/finally acquire
    # sites must carry an explicit justified suppression.
    findings = _run("bad_try_finally.py")
    assert rule_ids(findings) == ["lock-guard"]


def test_guarded_module_global():
    findings = _run("mixed_globals.py")
    assert rule_ids(findings) == ["lock-guard"]
    assert "module global '_POOLS'" in findings[0].message


def test_dangling_annotations_are_reported():
    findings = _run("bad_dangling.py")
    assert rule_ids(findings) == ["lock-annotation"] * 2

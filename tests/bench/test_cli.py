"""Tests for the `python -m repro.bench` command-line interface."""

import json

import pytest

from repro.bench import experiment_names
from repro.bench.__main__ import EXPERIMENTS, main


def test_every_experiment_is_registered():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "smoke",
    }
    assert set(EXPERIMENTS) == set(experiment_names())


def test_cli_smoke_check(capsys):
    code = main(["smoke"])
    assert code == 0
    assert "smoke check: OK" in capsys.readouterr().out


def test_cli_backend_flag_records_backend(capsys):
    code = main(["smoke", "--backend", "chunked"])
    assert code == 0
    out = capsys.readouterr().out
    assert "backend: chunked" in out
    assert "smoke check: OK" in out


def test_cli_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["smoke", "--backend", "cuda"])


def test_cli_runs_single_experiment(capsys):
    code = main(["table1", "--scale", "0.002", "--matrices", "ecology2", "tmt_sym"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "ecology2" in out and "tmt_sym" in out


def test_cli_runs_figure_driver(capsys):
    code = main(["fig3", "--scale", "0.002", "--matrices", "ecology2"])
    assert code == 0
    assert "bandwidth-efficiency" in capsys.readouterr().out


def test_cli_scaling_figures(capsys):
    code = main(["fig4", "--scale", "0.002", "--matrices", "ecology2"])
    assert code == 0
    assert "strong-scaling" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_cli_jobs_flag(capsys):
    code = main(["table1", "--scale", "0.002", "--matrices", "ecology2", "tmt_sym",
                 "--backend", "threaded", "--jobs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "backend: threaded" in out and "Table I" in out


def test_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["smoke", "--jobs", "0"])


def test_cli_json_writes_record(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["table1", "--scale", "0.002", "--matrices", "ecology2", "--json"])
    assert code == 0
    path = tmp_path / "BENCH_table1_numpy.json"
    assert path.exists()
    record = json.loads(path.read_text())
    assert record["experiment"] == "table1"
    assert record["rows"][0]["matrix"] == "ecology2"
    assert "wrote" in capsys.readouterr().out


def test_cli_sweep(capsys):
    code = main(["sweep", "table1", "--backends", "numpy,threaded",
                 "--scale", "0.002", "--matrices", "ecology2", "tmt_sym", "--jobs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: table1" in out
    assert "identical" in out
    assert "numpy" in out and "threaded" in out


def test_cli_sweep_json(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["sweep", "smoke", "--backends", "numpy,threaded", "--json"])
    assert code == 0
    assert (tmp_path / "BENCH_smoke_numpy.json").exists()
    assert (tmp_path / "BENCH_smoke_threaded.json").exists()
    assert (tmp_path / "BENCH_sweep_smoke.json").exists()


def test_cli_sweep_requires_target():
    with pytest.raises(SystemExit):
        main(["sweep"])


def test_cli_sweep_rejects_unknown_target():
    with pytest.raises(SystemExit):
        main(["sweep", "table99"])


def test_cli_sweep_rejects_unknown_backends():
    with pytest.raises(SystemExit):
        main(["sweep", "smoke", "--backends", "numpy,cuda"])


def test_cli_sweep_rejects_duplicate_backends():
    with pytest.raises(SystemExit):
        main(["sweep", "smoke", "--backends", "numpy,numpy"])


def test_cli_sweep_rejects_backend_flag():
    with pytest.raises(SystemExit):
        main(["sweep", "smoke", "--backend", "chunked"])


def test_cli_rejects_backends_without_sweep():
    with pytest.raises(SystemExit):
        main(["smoke", "--backends", "numpy,threaded"])


def test_cli_rejects_stray_target():
    with pytest.raises(SystemExit):
        main(["table1", "table2"])

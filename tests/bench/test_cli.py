"""Tests for the `python -m repro.bench` command-line interface."""

import json

import pytest

from repro.bench import experiment_names
from repro.bench.__main__ import EXPERIMENTS, main


def test_every_experiment_is_registered():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "smoke", "service",
    }
    assert set(EXPERIMENTS) == set(experiment_names())


def test_cli_smoke_check(capsys):
    code = main(["smoke"])
    assert code == 0
    assert "smoke check: OK" in capsys.readouterr().out


def test_cli_backend_flag_records_backend(capsys):
    code = main(["smoke", "--backend", "chunked"])
    assert code == 0
    out = capsys.readouterr().out
    assert "backend: chunked" in out
    assert "smoke check: OK" in out


def test_cli_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["smoke", "--backend", "cuda"])


def test_cli_runs_single_experiment(capsys):
    code = main(["table1", "--scale", "0.002", "--matrices", "ecology2", "tmt_sym"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "ecology2" in out and "tmt_sym" in out


def test_cli_runs_figure_driver(capsys):
    code = main(["fig3", "--scale", "0.002", "--matrices", "ecology2"])
    assert code == 0
    assert "bandwidth-efficiency" in capsys.readouterr().out


def test_cli_scaling_figures(capsys):
    code = main(["fig4", "--scale", "0.002", "--matrices", "ecology2"])
    assert code == 0
    assert "strong-scaling" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_cli_jobs_flag(capsys):
    code = main(["table1", "--scale", "0.002", "--matrices", "ecology2", "tmt_sym",
                 "--backend", "threaded", "--jobs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "backend: threaded" in out and "Table I" in out


def test_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["smoke", "--jobs", "0"])


def test_cli_json_writes_record(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["table1", "--scale", "0.002", "--matrices", "ecology2", "--json"])
    assert code == 0
    path = tmp_path / "BENCH_table1_numpy.json"
    assert path.exists()
    record = json.loads(path.read_text())
    assert record["experiment"] == "table1"
    assert record["rows"][0]["matrix"] == "ecology2"
    assert "wrote" in capsys.readouterr().out


def test_cli_sweep(capsys):
    code = main(["sweep", "table1", "--backends", "numpy,threaded",
                 "--scale", "0.002", "--matrices", "ecology2", "tmt_sym", "--jobs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: table1" in out
    assert "identical" in out
    assert "numpy" in out and "threaded" in out


def test_cli_sweep_json(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["sweep", "smoke", "--backends", "numpy,threaded", "--json"])
    assert code == 0
    assert (tmp_path / "BENCH_smoke_numpy.json").exists()
    assert (tmp_path / "BENCH_smoke_threaded.json").exists()
    assert (tmp_path / "BENCH_sweep_smoke.json").exists()


def test_cli_sweep_requires_target():
    with pytest.raises(SystemExit):
        main(["sweep"])


def test_cli_sweep_rejects_unknown_target():
    with pytest.raises(SystemExit):
        main(["sweep", "table99"])


def test_cli_sweep_rejects_unknown_backends():
    with pytest.raises(SystemExit):
        main(["sweep", "smoke", "--backends", "numpy,cuda"])


def test_cli_sweep_rejects_duplicate_backends():
    with pytest.raises(SystemExit):
        main(["sweep", "smoke", "--backends", "numpy,numpy"])


def test_cli_sweep_rejects_backend_flag():
    with pytest.raises(SystemExit):
        main(["sweep", "smoke", "--backend", "chunked"])


def test_cli_rejects_backends_without_sweep():
    with pytest.raises(SystemExit):
        main(["smoke", "--backends", "numpy,threaded"])


def test_cli_rejects_stray_target():
    with pytest.raises(SystemExit):
        main(["table1", "table2"])


def test_cli_partitioned_mode_defaults_to_four_parts(capsys):
    code = main(["partitioned", "smoke"])
    assert code == 0
    out = capsys.readouterr().out
    assert "parts: 4" in out
    assert "partitioned runs bit-identical" in out


def test_cli_parts_flag_on_plain_run(capsys):
    code = main(["smoke", "--parts", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "parts: 2" in out and "smoke check: OK" in out


def test_cli_sweep_with_parts_writes_partitioned_records(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["sweep", "smoke", "--parts", "2", "--backends", "numpy,threaded", "--json"])
    assert code == 0
    assert (tmp_path / "BENCH_smoke_p2_numpy.json").exists()
    assert (tmp_path / "BENCH_smoke_p2_threaded.json").exists()
    assert (tmp_path / "BENCH_sweep_smoke_p2.json").exists()
    assert "2 parts/graph" in capsys.readouterr().out


def test_cli_partitioned_requires_known_target():
    with pytest.raises(SystemExit):
        main(["partitioned"])
    with pytest.raises(SystemExit):
        main(["partitioned", "table99"])


def test_cli_rejects_bad_parts():
    with pytest.raises(SystemExit):
        main(["smoke", "--parts", "0"])


def test_cli_no_resident_writes_nr_records(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["smoke", "--parts", "2", "--no-resident", "--json"])
    assert code == 0
    out = capsys.readouterr().out
    assert "non-resident baseline" in out
    path = tmp_path / "BENCH_smoke_p2nr_numpy.json"
    assert path.exists()
    record = json.loads(path.read_text())
    assert record["resident"] is False
    assert record["parts"] == 2
    # The baseline path re-ships every superstep: no one-time resident bytes,
    # whole-part shipments per phase.
    for row in record["rows"]:
        assert row["resident_bytes"] == 0
        assert row["superstep_bytes"] > 0
        assert row["total_shipped_bytes"] == row["superstep_bytes"]


def test_cli_resident_records_byte_fields(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    assert main(["smoke", "--parts", "2", "--json"]) == 0
    record = json.loads((tmp_path / "BENCH_smoke_p2_numpy.json").read_text())
    assert record["resident"] is True
    for row in record["rows"]:
        assert row["resident_bytes"] > 0
        # The acceptance gate: after the one-time CSR shipment, a superstep
        # ships O(halo), far below the one-time payload.
        assert row["max_superstep_bytes"] < row["resident_bytes"]
        assert row["total_shipped_bytes"] == row["resident_bytes"] + row["superstep_bytes"]
    counts = record["counts"]
    assert any(key.endswith("/total_shipped_bytes") for key in counts)


def test_cli_rejects_no_resident_without_parts():
    with pytest.raises(SystemExit):
        main(["smoke", "--no-resident"])


def test_cli_full_halo_writes_fh_records(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["smoke", "--parts", "2", "--full-halo", "--json"])
    assert code == 0
    out = capsys.readouterr().out
    assert "full-halo deltas" in out
    path = tmp_path / "BENCH_smoke_p2fh_numpy.json"
    assert path.exists()
    record = json.loads(path.read_text())
    assert record["changed_deltas"] is False
    assert record["resident"] is True
    assert record["parts"] == 2


def test_cli_rejects_full_halo_without_parts():
    with pytest.raises(SystemExit):
        main(["smoke", "--full-halo"])


def test_cli_changed_deltas_shrink_bytes_vs_full_halo(capsys, tmp_path, monkeypatch):
    # The tentpole gate: same counts, strictly fewer total bytes than the
    # full-halo wire format, never more in the largest superstep.
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    assert main(["smoke", "--parts", "2", "--full-halo", "--json"]) == 0
    assert main(["smoke", "--parts", "2", "--json"]) == 0
    fh = json.loads((tmp_path / "BENCH_smoke_p2fh_numpy.json").read_text())
    cd = json.loads((tmp_path / "BENCH_smoke_p2_numpy.json").read_text())
    totals = [k for k in fh["counts"] if k.endswith("total_shipped_bytes")]
    assert totals
    for key in totals:
        assert cd["counts"][key] < fh["counts"][key]
    for key in (k for k in fh["counts"] if k.endswith("max_superstep_bytes")):
        assert cd["counts"][key] <= fh["counts"][key]
    capsys.readouterr()
    baseline = tmp_path / "BENCH_smoke_p2fh_numpy.json"
    candidate = tmp_path / "BENCH_smoke_p2_numpy.json"
    assert main(["compare", str(baseline), str(candidate)]) == 0
    out = capsys.readouterr().out
    assert "note: delta formats differ: full-halo vs changed-only" in out
    assert "shipped bytes: improved" in out
    header = next(line for line in out.splitlines() if line.startswith("bench compare:"))
    assert "full-halo" in header
    # The reverse direction ships more -> drift.
    assert main(["compare", str(candidate), str(baseline)]) == 1


def test_cli_sweep_no_resident_writes_nr_sweep_records(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    code = main(["sweep", "smoke", "--parts", "2", "--no-resident",
                 "--backends", "numpy,threaded", "--json"])
    assert code == 0
    assert (tmp_path / "BENCH_smoke_p2nr_numpy.json").exists()
    assert (tmp_path / "BENCH_smoke_p2nr_threaded.json").exists()
    assert (tmp_path / "BENCH_sweep_smoke_p2nr.json").exists()
    assert "(non-resident)" in capsys.readouterr().out


def test_cli_rejects_parts_on_unaware_experiment():
    # table1's task ignores config.parts; accepting --parts would stamp
    # parts=k on a record of an unpartitioned run.
    with pytest.raises(SystemExit):
        main(["table1", "--parts", "4", "--scale", "0.002", "--matrices", "ecology2"])
    with pytest.raises(SystemExit):
        main(["partitioned", "table1", "--scale", "0.002", "--matrices", "ecology2"])
    with pytest.raises(SystemExit):
        main(["sweep", "table1", "--parts", "4", "--backends", "numpy,threaded"])


def test_run_rejects_parts_on_unaware_experiment():
    import dataclasses

    from repro.bench import BenchConfig, run_experiment

    config = dataclasses.replace(
        BenchConfig(scale=0.002, trials=1, warmup=0, matrices=("ecology2",)), parts=2
    )
    with pytest.raises(ValueError, match="does not support partition-parallel"):
        run_experiment("table1", config)


def _write_record(tmp_path, monkeypatch, name="a"):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    assert main(["smoke", "--json"]) == 0
    path = tmp_path / "BENCH_smoke_numpy.json"
    renamed = tmp_path / f"BENCH_{name}.json"
    path.rename(renamed)
    return renamed


def test_cli_compare_identical_records(capsys, tmp_path, monkeypatch):
    a = _write_record(tmp_path, monkeypatch, "a")
    b = _write_record(tmp_path, monkeypatch, "b")
    assert main(["compare", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "deterministic counts: identical" in out


def test_cli_compare_fails_on_count_drift(capsys, tmp_path, monkeypatch):
    a = _write_record(tmp_path, monkeypatch, "a")
    b = tmp_path / "BENCH_drift.json"
    record = json.loads(a.read_text())
    key = sorted(record["counts"])[0]
    record["counts"][key] = -12345
    b.write_text(json.dumps(record))
    assert main(["compare", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "DRIFT" in out and key in out


def test_cli_compare_warns_on_elapsed_regression(capsys, tmp_path, monkeypatch):
    a = _write_record(tmp_path, monkeypatch, "a")
    b = tmp_path / "BENCH_slow.json"
    record = json.loads(a.read_text())
    record["elapsed_seconds"] = record["elapsed_seconds"] * 10
    b.write_text(json.dumps(record))
    assert main(["compare", str(a), str(b)]) == 0
    assert "WARNING" in capsys.readouterr().out
    # --strict-elapsed promotes the warning to a failure.
    assert main(["compare", str(a), str(b), "--strict-elapsed"]) == 1


def test_cli_compare_requires_two_paths():
    with pytest.raises(SystemExit):
        main(["compare"])
    with pytest.raises(SystemExit):
        main(["compare", "only-one.json"])


def test_cli_compare_clean_errors_on_bad_records(capsys, tmp_path, monkeypatch):
    a = _write_record(tmp_path, monkeypatch, "a")
    with pytest.raises(SystemExit, match="cannot read"):
        main(["compare", str(a), str(tmp_path / "missing.json")])
    truncated = tmp_path / "truncated.json"
    truncated.write_text(a.read_text()[:40])
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["compare", str(a), str(truncated)])
    not_a_record = tmp_path / "other.json"
    not_a_record.write_text('{"hello": 1}')
    with pytest.raises(SystemExit, match="not an ExperimentResult record"):
        main(["compare", str(a), str(not_a_record)])


def test_cli_compare_reports_backend_mismatch(capsys, tmp_path, monkeypatch):
    # Regression: comparing records from different backends/parts used to gate
    # silently; the mismatch must be visible in the rendered output.
    a = _write_record(tmp_path, monkeypatch, "a")
    b = tmp_path / "BENCH_other_backend.json"
    record = json.loads(a.read_text())
    record["backend"] = "threaded"
    b.write_text(json.dumps(record))
    assert main(["compare", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "note: backends differ: 'numpy' vs 'threaded'" in out
    assert "deterministic counts: identical" in out


def test_cli_compare_reports_parts_and_resident_mismatch(capsys, tmp_path, monkeypatch):
    a = _write_record(tmp_path, monkeypatch, "a")
    b = tmp_path / "BENCH_other_parts.json"
    record = json.loads(a.read_text())
    record["parts"] = 4
    record["resident"] = False
    b.write_text(json.dumps(record))
    assert main(["compare", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "note: partition counts differ: None vs 4" in out
    assert "note: execution paths differ: resident vs non-resident" in out
    header = next(line for line in out.splitlines() if line.startswith("bench compare:"))
    assert "non-resident" in header  # candidate label carries the mode


def test_cli_compare_gates_shipped_bytes_directionally(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    assert main(["smoke", "--parts", "2", "--no-resident", "--json"]) == 0
    assert main(["smoke", "--parts", "2", "--json"]) == 0
    baseline = tmp_path / "BENCH_smoke_p2nr_numpy.json"
    candidate = tmp_path / "BENCH_smoke_p2_numpy.json"
    capsys.readouterr()
    # Resident vs the non-resident baseline: kernel counts identical, bytes
    # strictly smaller -> an improvement, exit 0.
    assert main(["compare", str(baseline), str(candidate)]) == 0
    out = capsys.readouterr().out
    assert "deterministic counts: identical" in out
    assert "shipped bytes: improved" in out
    # The reverse direction ships *more* bytes -> drift, exit 1.
    assert main(["compare", str(candidate), str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "DRIFT" in out


def test_cli_compare_reports_missing_count_keys_explicitly(capsys, tmp_path, monkeypatch):
    # Regression: a key absent from one record rendered as "5 != None",
    # indistinguishable from a recorded null value.
    a = _write_record(tmp_path, monkeypatch, "a")
    record = json.loads(a.read_text())
    dropped = sorted(record["counts"])[0]
    value = record["counts"].pop(dropped)
    extra_value = 42
    record["counts"]["zzz/new_metric"] = extra_value
    b = tmp_path / "BENCH_missing.json"
    b.write_text(json.dumps(record))
    capsys.readouterr()
    assert main(["compare", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert f"counts[{dropped}]: missing from candidate (baseline has {value!r})" in out
    assert (
        f"counts[zzz/new_metric]: missing from baseline (candidate has {extra_value!r})"
        in out
    )
    assert "!= None" not in out and "None !=" not in out


def test_cli_compare_missing_key_vs_recorded_null_is_drift(capsys, tmp_path, monkeypatch):
    # A recorded null on one side must not mask a structurally missing key on
    # the other (counts.get() returns None for both, so a naive equality
    # short-circuit would pass the gate).
    a = _write_record(tmp_path, monkeypatch, "a")
    base = json.loads(a.read_text())
    key = sorted(base["counts"])[0]
    base["counts"][key] = None
    null_baseline = tmp_path / "BENCH_null.json"
    null_baseline.write_text(json.dumps(base))
    cand = json.loads(a.read_text())
    del cand["counts"][key]
    missing_candidate = tmp_path / "BENCH_missing2.json"
    missing_candidate.write_text(json.dumps(cand))
    capsys.readouterr()
    assert main(["compare", str(null_baseline), str(missing_candidate)]) == 1
    out = capsys.readouterr().out
    assert f"counts[{key}]: missing from candidate (baseline has None)" in out


def test_cli_compare_same_config_bytes_undercount_is_drift(capsys, tmp_path, monkeypatch):
    # Between records of the *same* execution configuration the byte counts
    # must be bit-identical: a smaller candidate value is under-accounting
    # (e.g. a backend skipping the shipped-bytes bookkeeping), not a win.
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    assert main(["smoke", "--parts", "2", "--json"]) == 0
    a = tmp_path / "BENCH_smoke_p2_numpy.json"
    b = tmp_path / "BENCH_undercount.json"
    record = json.loads(a.read_text())
    key = next(k for k in record["counts"] if k.endswith("total_shipped_bytes"))
    record["counts"][key] = record["counts"][key] - 1
    b.write_text(json.dumps(record))
    capsys.readouterr()
    assert main(["compare", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "DRIFT" in out and "shipped bytes: improved" not in out


def test_cli_rejects_candidate_without_compare():
    with pytest.raises(SystemExit):
        main(["sweep", "smoke", "extra.json"])

"""Tests for the `python -m repro.bench` command-line interface."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_every_experiment_is_registered():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "smoke",
    }


def test_cli_smoke_check(capsys):
    code = main(["smoke"])
    assert code == 0
    assert "smoke check: OK" in capsys.readouterr().out


def test_cli_backend_flag_records_backend(capsys):
    code = main(["smoke", "--backend", "chunked"])
    assert code == 0
    out = capsys.readouterr().out
    assert "backend: chunked" in out
    assert "smoke check: OK" in out


def test_cli_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["smoke", "--backend", "cuda"])


def test_cli_runs_single_experiment(capsys):
    code = main(["table1", "--scale", "0.002", "--matrices", "ecology2", "tmt_sym"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "ecology2" in out and "tmt_sym" in out


def test_cli_runs_figure_driver(capsys):
    code = main(["fig3", "--scale", "0.002", "--matrices", "ecology2"])
    assert code == 0
    assert "bandwidth-efficiency" in capsys.readouterr().out


def test_cli_scaling_figures(capsys):
    code = main(["fig4", "--scale", "0.002", "--matrices", "ecology2"])
    assert code == 0
    assert "strong-scaling" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["table99"])

"""Tests for the experiment drivers (fast configurations).

Each driver is run on a tiny configuration (two or three matrices, very small scale)
and its structural claims are checked: rows for every requested matrix, the published
reference numbers attached, and the qualitative "shape" the paper reports where it is
cheap enough to assert at this scale.
"""

import numpy as np
import pytest

from repro.util.tables import geometric_mean

from repro.bench import (
    AGGREGATION_SCHEMES,
    BenchConfig,
    PAPER_FIG2_MEANS,
    PAPER_TABLE5,
    PAPER_TABLE6,
    fig2_geometric_means,
    fig2_table,
    fig3_table,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_scaling,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    scaling_table,
    speedup_table,
    table1_table,
    table2_table,
    table3_table,
    table4_table,
    table5_table,
    table6_table,
)

#: A deliberately tiny configuration so the whole module runs in seconds.
FAST = BenchConfig(scale=0.003, trials=1, warmup=0, matrices=("ecology2", "Laplace3D_100"))


class TestTable1:
    def test_rows_and_schemes(self):
        rows = run_table1(FAST)
        assert [r.matrix for r in rows] == list(FAST.matrices)
        for row in rows:
            assert row.fixed >= 1 and row.xor >= 1 and row.xorstar >= 1
            assert row.paper_xorstar > 0
        text = table1_table(rows).render()
        assert "Xor*" in text and "ecology2" in text

    def test_xorstar_never_much_worse_than_fixed(self):
        rows = run_table1(FAST)
        for row in rows:
            assert row.xorstar <= row.fixed + 2


class TestTable2:
    def test_device_predictions_present(self):
        rows = run_table2(FAST)
        for row in rows:
            assert set(row.predicted_ms) == {"v100", "mi100", "skylake", "tx2"}
            assert all(v > 0 for v in row.predicted_ms.values())
            assert row.python_ms > 0
            assert set(row.paper_ms) == {"v100", "mi100", "skylake", "tx2"}
        assert "Skylake (ms)" in table2_table(rows).render()

    def test_gpu_predictions_faster_than_cpus_at_paper_scale(self):
        rows = run_table2(FAST, extrapolate_to_paper_size=True)
        for row in rows:
            assert row.predicted_ms["v100"] < row.predicted_ms["skylake"]


class TestTable3:
    def test_structured_scaling_shape(self):
        rows = run_table3(
            FAST,
            elasticity_grids=[(6, 6, 6), (12, 6, 6)],
            laplace_grids=[(10, 10, 10), (20, 10, 10)],
        )
        assert len(rows) == 4
        ela = [r for r in rows if r.problem.startswith("Elasticity")]
        lap = [r for r in rows if r.problem.startswith("Laplace")]
        # MIS-2 size grows with |V| for a fixed problem type (roughly proportionally).
        assert ela[1].mis2_size > ela[0].mis2_size
        assert lap[1].mis2_size > lap[0].mis2_size
        # Iterations grow slowly (at most a couple) when the problem doubles.
        assert ela[1].iterations <= ela[0].iterations + 3
        assert lap[1].iterations <= lap[0].iterations + 3
        # Elasticity (high degree) selects a much smaller fraction than Laplace.
        assert ela[0].mis2_fraction < lap[0].mis2_fraction
        assert "Elasticity 6x6x6" in table3_table(rows).render()


class TestTable4:
    def test_quality_spread_is_small(self):
        rows = run_table4(FAST)
        for row in rows:
            # Table IV's claim: all three implementations produce similar MIS-2 sizes.
            assert row.max_relative_spread < 0.12
            assert row.paper_kk > 0
        assert "ViennaCL" in table4_table(rows).render()


class TestTable5:
    def test_all_schemes_present_and_convergent(self):
        rows = run_table5(grid=(12, 12, 12))
        assert [r.scheme for r in rows] == list(AGGREGATION_SCHEMES)
        assert set(PAPER_TABLE5) == set(AGGREGATION_SCHEMES)
        by_name = {r.scheme: r for r in rows}
        for row in rows:
            assert row.converged
            assert row.iterations > 0
            assert row.setup_seconds >= row.aggregation_seconds >= 0
        # Headline of Table V: MIS2 Agg converges in no more iterations than MIS2 Basic.
        assert by_name["MIS2 Agg"].iterations <= by_name["MIS2 Basic"].iterations
        assert "MIS2 Agg" in table5_table(rows).render()


class TestTable6:
    def test_point_vs_cluster_comparison(self):
        config = BenchConfig(scale=0.004, trials=1, warmup=0,
                             matrices=("bodyy5", "Laplace3D_100"))
        rows = run_table6(config, tol=1e-6, maxiter=400)
        assert len(rows) == 2
        for row in rows:
            assert row.point_converged and row.cluster_converged
            assert row.point_setup_seconds > 0 and row.cluster_setup_seconds > 0
            assert row.point_iterations > 0 and row.cluster_iterations > 0
            assert len(row.paper) == 6
        assert "C. iters" in table6_table(rows).render()


class TestFigures:
    def test_fig2_speedups(self):
        rows = run_fig2(FAST)
        means = fig2_geometric_means(rows, use_model=True)
        # The fully optimized configuration must beat the Bell baseline in the model,
        # and the cumulative speedup must grow monotonically with the packed level.
        assert means["simd"] > 1.5
        assert means["packed_status"] >= means["worklist"] * 0.9
        assert set(PAPER_FIG2_MEANS) <= set(means)
        assert "geometric mean" in fig2_table(rows).render()

    def test_fig3_profiles_normalised(self):
        rows = run_fig3(FAST)
        for row in rows:
            norm = row.normalized()
            assert max(norm.values()) == pytest.approx(1.0)
            assert all(0 < v <= 1.0 for v in norm.values())
        assert "best device" in fig3_table(rows).render()

    @pytest.mark.parametrize("device_key,cores", [("skylake", 48), ("tx2", 56)])
    def test_fig45_scaling_curves(self, device_key, cores):
        rows = run_scaling(device_key, FAST)
        for row in rows:
            assert row.efficiency[0] == pytest.approx(1.0)
            # Efficiency decreases with thread count and hyperthreads do not help.
            assert row.efficiency[-1] < row.efficiency[0]
            assert row.speedup_at(cores) > 10
        assert "strong-scaling" in scaling_table(rows).title

    def test_fig6_and_fig7_speedups(self):
        fig6 = run_fig6(FAST)
        fig7 = run_fig7(FAST)
        for rows, label in ((fig6, "cusp"), (fig7, "viennacl")):
            assert all(r.baseline == label for r in rows)
            # Algorithm 1 beats the Bell-based library pipeline in the V100 model on
            # every matrix (Figs. 6 and 7 show 3-8x on all 17). The wall-clock
            # comparison is asserted on the geometric mean: single-trial timings on a
            # loaded CI box are too noisy for a strict per-matrix bound.
            for r in rows:
                assert r.model_speedup > 1.0
            assert geometric_mean([r.python_speedup for r in rows]) > 1.0
        assert "speedup" in speedup_table(fig6, "Fig. 6").columns[3]

"""Tests for the Experiment framework: registry, JSON persistence, sweep driver."""

import pickle

import pytest

from repro.bench import (
    BenchConfig,
    ExperimentResult,
    SweepMismatchError,
    clear_suite_cache,
    experiment_names,
    get_experiment,
    run_experiment,
    suite_cache_stats,
    sweep,
    sweep_table,
)
from repro.bench.__main__ import EXPERIMENTS
from repro.bench.experiment import SweepResult, _TaskInvocation
from repro.bench.table1 import Table1Row

#: The paper's twelve experiments plus the CI smoke check.
PAPER_EXPERIMENTS = {
    "table1", "table2", "table3", "table4", "table5", "table6",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
}

#: Two tiny matrices keep every run in this module to a fraction of a second.
TINY = BenchConfig(scale=0.002, trials=1, warmup=0, matrices=("ecology2", "tmt_sym"))


class TestRegistry:
    def test_all_twelve_paper_experiments_registered(self):
        assert PAPER_EXPERIMENTS | {"smoke", "service"} == set(experiment_names())

    def test_registry_names_match_cli(self):
        assert set(EXPERIMENTS) == set(experiment_names())
        for name, experiment in EXPERIMENTS.items():
            assert experiment.name == name

    def test_get_experiment_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("table99")

    def test_every_experiment_plans_units(self):
        for name in experiment_names():
            units = get_experiment(name).units(TINY)
            assert len(units) >= 1, name

    def test_every_experiment_declares_determinism(self):
        for name in experiment_names():
            experiment = get_experiment(name)
            assert experiment.deterministic_fields, name
            assert experiment.key_field

    def test_task_invocations_are_picklable(self):
        """No lambdas on the map_graphs seam: every task must cross a process pool,
        with every registered backend instance (including a configured chunked
        clone and the numba backend after its lazy JIT probe) riding along."""
        from repro.parallel import ChunkedBackend, available_backends, get_backend

        backends = [get_backend(b) for b in available_backends()]
        backends.append(ChunkedBackend(block_elements=8))
        for name in experiment_names():
            experiment = get_experiment(name)
            for backend in backends:
                invocation = _TaskInvocation(experiment.task, TINY, backend)
                restored = pickle.loads(pickle.dumps(invocation))
                assert restored.backend.name == backend.name
                assert restored.config == TINY
        # The configured clone keeps its configuration across the boundary.
        clone = pickle.loads(
            pickle.dumps(_TaskInvocation(get_experiment("table1").task, TINY,
                                         ChunkedBackend(block_elements=8)))
        ).backend
        assert clone.block_elements == 8


class TestExperimentRun:
    def test_run_returns_structured_result(self):
        result = run_experiment("table1", TINY)
        assert result.experiment == "table1"
        assert result.backend == "numpy"
        assert result.units == 2
        assert result.elapsed_seconds > 0
        assert [r.matrix for r in result.rows] == list(TINY.matrices)
        assert all(isinstance(r, Table1Row) for r in result.rows)
        assert result.counts["ecology2/xorstar"] >= 1

    def test_rows_preserve_plan_order_across_backends(self):
        for backend in ("chunked", "threaded"):
            result = run_experiment("table1", TINY, backend=backend, jobs=2)
            assert [r.matrix for r in result.rows] == list(TINY.matrices)
            assert result.backend == backend
            assert result.jobs == 2

    def test_config_backend_is_honoured(self):
        config = BenchConfig(
            scale=0.002, trials=1, warmup=0, matrices=("ecology2",), backend="threaded"
        )
        assert run_experiment("table1", config).backend == "threaded"


class TestJsonRoundTrip:
    def test_result_round_trips_through_json(self):
        result = run_experiment("table1", TINY)
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.experiment == result.experiment
        assert restored.backend == result.backend
        assert restored.counts == result.counts
        assert restored.to_dict() == result.to_dict()

    def test_save_writes_bench_json(self, tmp_path):
        result = run_experiment("table1", TINY)
        path = result.save(tmp_path)
        assert path.name == "BENCH_table1_numpy.json"
        restored = ExperimentResult.from_json(path.read_text())
        assert restored.to_dict() == result.to_dict()

    def test_non_finite_floats_become_null(self):
        # table6 rows carry paper=(nan,)*6 for non-paper matrices; strict JSON
        # consumers (jq, JSON.parse) reject the NaN token json.dumps would emit.
        result = ExperimentResult(
            experiment="x", backend="numpy", jobs=None, scale=1.0, seed=0,
            trials=1, units=1, elapsed_seconds=0.1,
            counts={"a/nan": float("nan")},
            rows=[{"paper": (float("nan"), float("inf"))}],
        )
        text = result.to_json()
        assert "NaN" not in text and "Infinity" not in text
        import json

        parsed = json.loads(text)
        assert parsed["counts"]["a/nan"] is None
        assert parsed["rows"][0]["paper"] == [None, None]

    def test_rows_are_json_safe(self):
        # table5 rows carry tuples and bools; fig3 rows carry float dicts.
        import json

        result = run_experiment("fig3", TINY)
        parsed = json.loads(result.to_json())
        assert parsed["rows"][0]["matrix"] == "ecology2"
        assert set(parsed["rows"][0]["efficiency"]) == {"v100", "mi100", "skylake", "tx2"}

    def test_parts_round_trip_and_filename(self, tmp_path):
        import dataclasses

        config = dataclasses.replace(TINY, parts=2)
        result = run_experiment("smoke", config)
        assert result.parts == 2
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.parts == 2
        path = result.save(tmp_path)
        assert path.name == "BENCH_smoke_p2_numpy.json"
        # Legacy records without a parts key load as unpartitioned.
        legacy = result.to_dict()
        del legacy["parts"]
        assert ExperimentResult.from_dict(legacy).parts is None
        assert ExperimentResult.from_dict(legacy).filename == "BENCH_smoke_numpy.json"

    def test_partitioned_smoke_rows_record_boundary_stats(self):
        import dataclasses

        config = dataclasses.replace(TINY, parts=3)
        result = run_experiment("smoke", config)
        for row in result.rows:
            assert row.parts == 3
            assert row.boundary_vertices >= 0
            assert row.ghost_supersteps > 0
        plain = run_experiment("smoke", TINY)
        for row in plain.rows:
            assert row.parts == 1 and row.ghost_supersteps == 0


class TestSweep:
    def test_smoke_sweep_across_backends(self):
        """The acceptance smoke sweep: 2 tiny matrices, serial + threaded."""
        result = sweep("table1", ["numpy", "threaded"], TINY, jobs=2)
        assert [r.backend for r in result.results] == ["numpy", "threaded"]
        assert result.reference.backend == "numpy"
        # Identical measured iteration counts across backends — the paper's claim.
        assert result.results[0].counts == result.results[1].counts
        assert result.speedup(result.reference) == pytest.approx(1.0)
        text = sweep_table(result).render()
        assert "numpy" in text and "threaded" in text and "identical" in text

    def test_sweep_requires_backends(self):
        with pytest.raises(ValueError, match="at least one backend"):
            sweep("table1", [], TINY)

    def test_sweep_detects_count_mismatch(self):
        good = run_experiment("table1", TINY)
        bad = ExperimentResult.from_dict(good.to_dict())
        bad.backend = "threaded"
        bad.counts = dict(bad.counts)
        bad.counts["ecology2/xorstar"] = -99
        from repro.bench.experiment import _check_counts

        with pytest.raises(SweepMismatchError, match="ecology2/xorstar"):
            _check_counts("table1", [good, bad])

    def test_sweep_summary_round_trip(self, tmp_path):
        result = sweep("smoke", ["numpy", "threaded"], TINY)
        path = result.save(tmp_path)
        assert path.name == "BENCH_sweep_smoke.json"
        import json

        summary = json.loads(path.read_text())
        assert summary["experiment"] == "smoke"
        assert summary["backends"] == ["numpy", "threaded"]
        assert summary["speedups"]["numpy"] == pytest.approx(1.0)

    def test_sweep_result_mismatch_renders_in_table(self):
        good = run_experiment("smoke", TINY)
        bad = ExperimentResult.from_dict(good.to_dict())
        bad.backend = "chunked"
        bad.counts = dict(bad.counts, extra=1)
        text = sweep_table(SweepResult(experiment="smoke", results=[good, bad])).render()
        assert "MISMATCH" in text


class TestSuiteCache:
    def test_cache_keyed_and_clearable(self):
        from repro.bench import cached_suite_graph

        clear_suite_cache()
        assert suite_cache_stats() == {"graphs": 0, "matrices": 0}
        g1 = cached_suite_graph("ecology2", 0.002, 0, None)
        assert cached_suite_graph("ecology2", 0.002, 0, None) is g1
        # A different (name, scale, seed, mtx_dir) key is a different entry.
        g2 = cached_suite_graph("ecology2", 0.002, 1, None)
        assert g2 is not g1
        assert suite_cache_stats()["graphs"] == 2
        clear_suite_cache()
        assert suite_cache_stats() == {"graphs": 0, "matrices": 0}

    def test_cache_capacity_bounded(self):
        from repro.bench import cached_suite_graph
        from repro.bench.config import _CACHE_CAPACITY

        clear_suite_cache()
        for seed in range(_CACHE_CAPACITY + 5):
            cached_suite_graph("ecology2", 0.001, seed, None)
        assert suite_cache_stats()["graphs"] <= _CACHE_CAPACITY
        clear_suite_cache()

"""Tests for the speculative parallel greedy distance-1 coloring."""

import numpy as np
import pytest

from repro.coloring import color_class_sizes, greedy_color, is_valid_coloring, num_colors
from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid2d,
    path_graph,
    star_graph,
)


class TestCorrectness:
    def test_valid_on_every_small_graph(self, any_small_graph):
        result = greedy_color(any_small_graph)
        assert is_valid_coloring(any_small_graph, result.colors, distance=1)

    def test_all_vertices_colored(self, nonempty_small_graph):
        result = greedy_color(nonempty_small_graph)
        assert np.all(result.colors >= 0)
        assert result.colors.size == nonempty_small_graph.num_vertices

    def test_color_count_bounded_by_degree_plus_one(self, nonempty_small_graph):
        result = greedy_color(nonempty_small_graph)
        assert result.num_colors <= nonempty_small_graph.max_degree() + 1

    def test_empty_graph(self):
        result = greedy_color(empty_graph(0))
        assert result.num_colors == 0
        assert result.colors.size == 0

    def test_isolated_vertices_single_color(self):
        result = greedy_color(empty_graph(7))
        assert result.num_colors == 1

    def test_bipartite_grid_uses_few_colors(self):
        result = greedy_color(grid2d(10, 10))
        assert result.num_colors <= 4

    def test_complete_graph_needs_n_colors(self):
        result = greedy_color(complete_graph(6))
        assert result.num_colors == 6

    def test_star_two_colors(self):
        result = greedy_color(star_graph(9))
        assert result.num_colors == 2

    def test_colors_are_dense(self, nonempty_small_graph):
        result = greedy_color(nonempty_small_graph)
        used = np.unique(result.colors)
        assert used.tolist() == list(range(result.num_colors))


class TestResultObject:
    def test_color_classes_partition_vertices(self, small_laplace3d):
        result = greedy_color(small_laplace3d)
        classes = result.color_classes()
        assert len(classes) == result.num_colors
        combined = np.sort(np.concatenate(classes))
        assert np.array_equal(combined, np.arange(small_laplace3d.num_vertices))

    def test_num_colors_helper(self):
        assert num_colors(np.array([0, 1, 1, 2])) == 3
        assert num_colors(np.array([], dtype=np.int64)) == 0

    def test_color_class_sizes_helper(self):
        sizes = color_class_sizes(np.array([0, 0, 1, 2, 2, 2]))
        assert sizes == {0: 2, 1: 1, 2: 3}

    def test_deterministic(self, small_laplace3d):
        a = greedy_color(small_laplace3d)
        b = greedy_color(small_laplace3d)
        assert np.array_equal(a.colors, b.colors)

    def test_traffic_recorded(self, small_laplace3d):
        result = greedy_color(small_laplace3d)
        assert result.traffic.num_kernels >= 2

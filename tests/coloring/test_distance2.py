"""Tests for distance-2 coloring (parallel and sequential)."""

import numpy as np
import pytest

from repro.coloring import (
    distance2_color,
    greedy_color,
    is_valid_coloring,
    sequential_distance2_color,
    sequential_greedy_color,
)
from repro.graph import cycle_graph, empty_graph, grid2d, path_graph, star_graph
from repro.mis import is_independent_set


class TestDistance2Coloring:
    def test_valid_on_every_small_graph(self, any_small_graph):
        result = distance2_color(any_small_graph)
        assert is_valid_coloring(any_small_graph, result.colors, distance=2)
        assert result.distance == 2

    def test_color_classes_are_distance2_independent_sets(self, nonempty_small_graph):
        result = distance2_color(nonempty_small_graph)
        for cls in result.color_classes():
            assert is_independent_set(nonempty_small_graph, cls, k=2)

    def test_star_needs_many_colors(self):
        # All leaves are within distance 2 of each other.
        result = distance2_color(star_graph(6))
        assert result.num_colors == 7

    def test_path_needs_three_colors(self):
        result = distance2_color(path_graph(9))
        assert result.num_colors == 3

    def test_empty(self):
        assert distance2_color(empty_graph(0)).num_colors == 0

    def test_uses_more_colors_than_distance1(self, small_laplace3d):
        d1 = greedy_color(small_laplace3d)
        d2 = distance2_color(small_laplace3d)
        assert d2.num_colors > d1.num_colors


class TestSequentialColoring:
    def test_sequential_d1_valid(self, any_small_graph):
        result = sequential_greedy_color(any_small_graph)
        assert is_valid_coloring(any_small_graph, result.colors, distance=1)

    def test_sequential_d2_valid(self, nonempty_small_graph):
        result = sequential_distance2_color(nonempty_small_graph)
        assert is_valid_coloring(nonempty_small_graph, result.colors, distance=2)

    def test_sequential_first_fit_is_compact(self):
        result = sequential_greedy_color(grid2d(8, 8))
        assert result.num_colors == 2

    def test_parallel_color_count_close_to_sequential(self, small_laplace3d):
        par = greedy_color(small_laplace3d)
        seq = sequential_greedy_color(small_laplace3d)
        assert par.num_colors <= 2 * seq.num_colors + 1

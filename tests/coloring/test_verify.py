"""Tests for coloring verification."""

import numpy as np
import pytest

from repro.coloring import is_valid_coloring
from repro.graph import cycle_graph, empty_graph, path_graph


def test_valid_and_invalid_distance1():
    g = path_graph(4)
    assert is_valid_coloring(g, np.array([0, 1, 0, 1]), distance=1)
    assert not is_valid_coloring(g, np.array([0, 0, 1, 0]), distance=1)


def test_distance2_check():
    g = path_graph(4)
    assert not is_valid_coloring(g, np.array([0, 1, 0, 1]), distance=2)
    assert is_valid_coloring(g, np.array([0, 1, 2, 0]), distance=2)


def test_uncolored_vertices_invalid():
    g = path_graph(3)
    assert not is_valid_coloring(g, np.array([0, -1, 1]), distance=1)


def test_wrong_length_rejected():
    with pytest.raises(ValueError):
        is_valid_coloring(path_graph(3), np.array([0, 1]))


def test_empty_graph_trivially_valid():
    assert is_valid_coloring(empty_graph(0), np.zeros(0, dtype=np.int64))


def test_cycle_odd_requires_three_colors():
    g = cycle_graph(5)
    assert not is_valid_coloring(g, np.array([0, 1, 0, 1, 0]), distance=1)
    assert is_valid_coloring(g, np.array([0, 1, 0, 1, 2]), distance=1)

"""End-to-end integration tests across module boundaries.

These mirror the paper's two use cases (SA-AMG aggregation and cluster Gauss-Seidel
preconditioning) plus the multilevel-coarsening application, exercising the whole
stack: generators -> MIS-2 -> aggregation -> transfer operators -> solvers.
"""

import numpy as np
import pytest

from repro.coarsen import (
    aggregate_quality,
    coarsen_recursive,
    galerkin_operator,
    mis2_aggregation,
    smoothed_prolongation,
)
from repro.graph import elasticity3d_matrix, from_scipy, laplace3d_matrix, load_suite_matrix
from repro.gs import ClusterMulticolorGaussSeidel, MulticolorGaussSeidel
from repro.mis import kk_mis2, verify_mis
from repro.solvers import build_hierarchy, gmres, pcg


class TestAMGPipeline:
    def test_laplace_poisson_solve_end_to_end(self):
        A = laplace3d_matrix(13, 13, 13)
        rng = np.random.default_rng(0)
        x_exact = rng.random(A.shape[0])
        b = A @ x_exact
        hierarchy = build_hierarchy(A, aggregation_fn=mis2_aggregation)
        result = hierarchy.solve(b, tol=1e-10)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-5)
        # The aggregation driving the hierarchy must itself be a valid coarsening.
        level0 = hierarchy.levels[0]
        assert level0.aggregation.is_complete()

    def test_elasticity_like_system(self):
        A = elasticity3d_matrix(4, 4, 4, dofs_per_node=3)
        b = np.ones(A.shape[0])
        hierarchy = build_hierarchy(A)
        result = hierarchy.solve(b, tol=1e-8, maxiter=300)
        assert result.converged

    def test_manual_two_level_method(self):
        A = laplace3d_matrix(10, 10, 10)
        graph = from_scipy(A)
        mis = kk_mis2(graph)
        assert verify_mis(graph, mis.in_set, k=2)
        agg = mis2_aggregation(graph, mis=mis)
        P, _ = smoothed_prolongation(A, agg)
        Ac = galerkin_operator(A, P)
        assert Ac.shape[0] == agg.num_aggregates
        # Two-level preconditioner: coarse-grid correction plus Jacobi smoothing.
        from repro.solvers import DirectSolver, JacobiSmoother

        coarse = DirectSolver(Ac)
        smoother = JacobiSmoother(A, sweeps=1)

        def two_level(r):
            x = smoother.apply(r)
            x += P @ coarse.solve(P.T @ (r - A @ x))
            return smoother.apply(r, x)

        b = np.ones(A.shape[0])
        plain = pcg(A, b, tol=1e-10, maxiter=2000)
        preconditioned = pcg(A, b, M=two_level, tol=1e-10, maxiter=2000)
        assert preconditioned.converged
        assert preconditioned.iterations < plain.iterations


class TestClusterGSPipeline:
    def test_gmres_with_both_preconditioners_on_suite_matrix(self):
        A = load_suite_matrix("Laplace3D_100", scale=0.004)
        b = np.ones(A.shape[0])
        point = MulticolorGaussSeidel(A)
        cluster = ClusterMulticolorGaussSeidel(A)
        rp = gmres(A, b, M=point.as_preconditioner(), tol=1e-8, maxiter=600)
        rc = gmres(A, b, M=cluster.as_preconditioner(), tol=1e-8, maxiter=600)
        assert rp.converged and rc.converged
        # Cluster setup colors a much smaller graph.
        assert cluster.coarse.num_vertices < A.shape[0] / 3
        # Both solutions solve the system.
        assert np.allclose(A @ rc.x, b, atol=1e-5)


class TestMultilevelPartitioningPipeline:
    def test_coarsen_partition_project(self):
        A = laplace3d_matrix(12, 12, 12)
        graph = from_scipy(A)
        hierarchy = coarsen_recursive(graph, target_size=64)
        assert hierarchy.coarsest.num_vertices <= 64 or hierarchy.num_levels > 1
        # "Partition" the coarsest graph by alternating labels and project back.
        coarse_part = np.arange(hierarchy.coarsest.num_vertices) % 2
        fine_part = hierarchy.project_to_finest(coarse_part)
        assert fine_part.shape == (graph.num_vertices,)
        sizes = np.bincount(fine_part, minlength=2)
        # Both parts are non-trivial (coarsening preserves rough balance).
        assert sizes.min() > graph.num_vertices * 0.2

    def test_quality_improves_with_algorithm3(self):
        graph = from_scipy(laplace3d_matrix(12, 12, 12))
        agg = mis2_aggregation(graph)
        q = aggregate_quality(agg)
        assert q.singletons == 0
        assert q.mean_size >= 3.0

"""Tests for the xorshift / xorshift* hash functions."""

import numpy as np
import pytest

from repro.hashing import (
    XORSHIFT64_STAR_MULTIPLIER,
    hash_iter_vertex,
    xorshift64,
    xorshift64star,
)


class TestXorshift:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert np.array_equal(xorshift64(x), xorshift64(x))
        assert np.array_equal(xorshift64star(x), xorshift64star(x))

    def test_scalar_and_array_agree(self):
        arr = xorshift64star(np.array([7, 8], dtype=np.uint64))
        assert xorshift64star(7) == arr[0]
        assert xorshift64star(8) == arr[1]

    def test_zero_is_fixed_point_of_xorshift(self):
        assert int(xorshift64(0)) == 0
        assert int(xorshift64star(0)) == 0

    def test_nonzero_inputs_produce_distinct_outputs(self):
        x = np.arange(1, 10_001, dtype=np.uint64)
        assert np.unique(xorshift64(x)).size == x.size
        assert np.unique(xorshift64star(x)).size == x.size

    def test_outputs_fill_64_bit_range(self):
        x = np.arange(1, 1001, dtype=np.uint64)
        h = xorshift64star(x)
        # High bits must be exercised (values above 2^63 occur).
        assert (h > np.uint64(1) << np.uint64(63)).any()

    def test_star_differs_from_plain(self):
        x = np.arange(1, 100, dtype=np.uint64)
        assert not np.array_equal(xorshift64(x), xorshift64star(x))

    def test_multiplier_constant(self):
        assert int(XORSHIFT64_STAR_MULTIPLIER) == 0x2545F4914F6CDD1D

    def test_does_not_mutate_input(self):
        x = np.arange(5, dtype=np.uint64)
        before = x.copy()
        xorshift64(x)
        xorshift64star(x)
        assert np.array_equal(x, before)


class TestHashIterVertex:
    def test_changes_with_iteration(self):
        v = np.arange(50, dtype=np.uint64)
        h0 = hash_iter_vertex(0, v)
        h1 = hash_iter_vertex(1, v)
        assert not np.array_equal(h0, h1)

    def test_changes_with_vertex(self):
        h = hash_iter_vertex(3, np.arange(1000, dtype=np.uint64))
        assert np.unique(h).size == 1000

    def test_star_flag_selects_function(self):
        v = np.arange(20, dtype=np.uint64)
        assert not np.array_equal(
            hash_iter_vertex(0, v, star=True), hash_iter_vertex(0, v, star=False)
        )

    def test_vertex_zero_iteration_zero_is_not_degenerate(self):
        assert int(hash_iter_vertex(0, np.array([0], dtype=np.uint64))[0]) != 0

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            hash_iter_vertex(-1, np.array([0], dtype=np.uint64))

    def test_low_correlation_between_iterations(self):
        # The decorrelation across iterations is exactly why the paper picked
        # xorshift*: consecutive iterations should rank vertices very differently.
        v = np.arange(2000, dtype=np.uint64)
        r0 = np.argsort(hash_iter_vertex(0, v))
        r1 = np.argsort(hash_iter_vertex(1, v))
        ranks0 = np.empty_like(r0)
        ranks0[r0] = np.arange(v.size)
        ranks1 = np.empty_like(r1)
        ranks1[r1] = np.arange(v.size)
        corr = np.corrcoef(ranks0, ranks1)[0, 1]
        assert abs(corr) < 0.1

"""Tests for the priority schemes of Section V-A."""

import numpy as np
import pytest

from repro.hashing import (
    PriorityScheme,
    fixed_priorities,
    iteration_priorities,
    priority_scheme_names,
)


class TestPriorityScheme:
    def test_coerce_from_string(self):
        assert PriorityScheme.coerce("fixed") is PriorityScheme.FIXED
        assert PriorityScheme.coerce("XORSTAR") is PriorityScheme.XORSTAR
        assert PriorityScheme.coerce(PriorityScheme.XOR) is PriorityScheme.XOR

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            PriorityScheme.coerce("random")

    def test_names_in_table_one_order(self):
        assert priority_scheme_names() == ["fixed", "xor", "xorstar"]


class TestFixedPriorities:
    def test_deterministic_per_seed(self):
        assert np.array_equal(fixed_priorities(100, seed=1), fixed_priorities(100, seed=1))
        assert not np.array_equal(fixed_priorities(100, seed=1), fixed_priorities(100, seed=2))

    def test_all_distinct(self):
        p = fixed_priorities(5000)
        assert np.unique(p).size == 5000

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            fixed_priorities(-1)

    def test_empty(self):
        assert fixed_priorities(0).size == 0


class TestIterationPriorities:
    def test_fixed_scheme_ignores_iteration(self):
        a = iteration_priorities("fixed", 0, 64, seed=3)
        b = iteration_priorities("fixed", 9, 64, seed=3)
        assert np.array_equal(a, b)

    def test_hash_schemes_change_with_iteration(self):
        a = iteration_priorities("xorstar", 0, 64)
        b = iteration_priorities("xorstar", 1, 64)
        assert not np.array_equal(a, b)

    def test_xor_and_xorstar_differ(self):
        a = iteration_priorities("xor", 2, 64)
        b = iteration_priorities("xorstar", 2, 64)
        assert not np.array_equal(a, b)

    def test_output_length_and_dtype(self):
        p = iteration_priorities("xorstar", 0, 33)
        assert p.shape == (33,)
        assert p.dtype == np.uint64

"""Tests for the compressed status tuples of Section V-C."""

import numpy as np
import pytest

from repro.hashing import TuplePacking, packed_in, packed_out, priority_bits


class TestPriorityBits:
    def test_paper_formula(self):
        # b = ceil(log2(|V| + 2))
        id_bits, prio_bits = priority_bits(1000, word_bits=32)
        assert id_bits == 10
        assert prio_bits == 22

    def test_small_graphs(self):
        assert priority_bits(0)[0] == 1
        assert priority_bits(1)[0] == 2

    def test_word_width_validation(self):
        with pytest.raises(ValueError):
            priority_bits(10, word_bits=16)
        with pytest.raises(ValueError):
            priority_bits(-1)

    def test_too_large_graph_for_32_bits(self):
        with pytest.raises(ValueError):
            priority_bits(2**33, word_bits=32)

    def test_packed_markers(self):
        assert packed_in(32) == 0
        assert packed_out(32) == 2**32 - 1
        assert packed_out(64) == 2**64 - 1
        with pytest.raises(ValueError):
            packed_out(8)


@pytest.mark.parametrize("word_bits", [32, 64])
class TestTuplePacking:
    def test_roundtrip(self, word_bits):
        packer = TuplePacking(500, word_bits=word_bits)
        vids = np.arange(500, dtype=np.int64)
        prios = np.arange(500, dtype=np.uint64) * 7 + 1
        packed = packer.pack(prios, vids)
        unpacked_prio, unpacked_vid = packer.unpack(packed)
        assert np.array_equal(unpacked_vid, vids)
        # Priorities are truncated to prio_bits.
        mask = (1 << packer.prio_bits) - 1
        assert np.array_equal(unpacked_prio, prios & mask)

    def test_ordering_in_lt_undecided_lt_out(self, word_bits):
        packer = TuplePacking(100, word_bits=word_bits)
        packed = packer.pack(np.uint64(12345), np.int64(42))
        assert packer.in_value < packed < packer.out_value

    def test_no_collision_with_markers(self, word_bits):
        # Equation 1 of the paper: no (priority, id) packs to IN or OUT.
        packer = TuplePacking(300, word_bits=word_bits)
        vids = np.arange(300, dtype=np.int64)
        max_prio = np.full(300, np.iinfo(np.uint64).max, dtype=np.uint64)
        zero_prio = np.zeros(300, dtype=np.uint64)
        for prios in (max_prio, zero_prio):
            packed = packer.pack(prios, vids)
            assert not packer.is_in(packed).any()
            assert not packer.is_out(packed).any()
            assert packer.is_undecided(packed).all()

    def test_id_is_tiebreak(self, word_bits):
        packer = TuplePacking(64, word_bits=word_bits)
        same_prio = np.uint64(99)
        a = packer.pack(same_prio, np.int64(3))
        b = packer.pack(same_prio, np.int64(17))
        assert a != b
        assert a < b  # lower id wins the minimum

    def test_priority_dominates_id(self, word_bits):
        packer = TuplePacking(64, word_bits=word_bits)
        low = packer.pack(np.uint64(1), np.int64(60))
        high = packer.pack(np.uint64(2), np.int64(0))
        assert low < high

    def test_vertex_of(self, word_bits):
        packer = TuplePacking(200, word_bits=word_bits)
        packed = packer.pack(np.uint64(5), np.arange(200, dtype=np.int64))
        assert np.array_equal(packer.vertex_of(packed), np.arange(200))

    def test_unpack_markers_rejected(self, word_bits):
        packer = TuplePacking(10, word_bits=word_bits)
        with pytest.raises(ValueError):
            packer.unpack(np.array([packer.in_value]))
        with pytest.raises(ValueError):
            packer.unpack(np.array([packer.out_value]))

    def test_pack_rejects_bad_vertex(self, word_bits):
        packer = TuplePacking(10, word_bits=word_bits)
        with pytest.raises(ValueError):
            packer.pack(np.uint64(1), np.int64(10))
        with pytest.raises(ValueError):
            packer.pack(np.uint64(1), np.int64(-1))

    def test_dtype_matches_word_width(self, word_bits):
        packer = TuplePacking(10, word_bits=word_bits)
        expected = np.uint32 if word_bits == 32 else np.uint64
        assert packer.dtype == np.dtype(expected)

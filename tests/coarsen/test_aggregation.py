"""Tests for the Aggregation container and the max-coupling cleanup."""

import numpy as np
import pytest

from repro.coarsen import Aggregation, join_by_max_coupling
from repro.graph import from_edges, path_graph, star_graph


class TestAggregationContainer:
    def test_basic_properties(self):
        agg = Aggregation(labels=np.array([0, 0, 1, 1, 1]), num_aggregates=2)
        assert agg.num_vertices == 5
        assert agg.is_complete()
        assert agg.sizes().tolist() == [2, 3]
        assert agg.members(1).tolist() == [2, 3, 4]

    def test_incomplete_detection(self):
        agg = Aggregation(labels=np.array([0, -1, 0]), num_aggregates=1)
        assert not agg.is_complete()

    def test_aggregate_lists_partition(self):
        labels = np.array([2, 0, 1, 0, 2, 1])
        agg = Aggregation(labels=labels, num_aggregates=3)
        lists = agg.aggregate_lists()
        assert len(lists) == 3
        combined = np.sort(np.concatenate(lists))
        assert np.array_equal(combined, np.arange(6))
        for a, members in enumerate(lists):
            assert np.all(labels[members] == a)

    def test_members_out_of_range(self):
        agg = Aggregation(labels=np.array([0]), num_aggregates=1)
        with pytest.raises(IndexError):
            agg.members(3)

    def test_empty_aggregation(self):
        agg = Aggregation(labels=np.zeros(0, dtype=np.int64), num_aggregates=0)
        assert agg.is_complete()
        assert agg.sizes().size == 0


class TestJoinByMaxCoupling:
    def test_joins_to_most_connected_aggregate(self):
        # Vertex 4 touches aggregate 0 twice (vertices 0, 1) and aggregate 1 once.
        g = from_edges(5, [(0, 1), (2, 3), (4, 0), (4, 1), (4, 2)])
        labels = np.array([0, 0, 1, 1, -1])
        out = join_by_max_coupling(g, labels, 2)
        assert out[4] == 0
        # Existing labels are untouched.
        assert out[:4].tolist() == [0, 0, 1, 1]

    def test_tie_broken_by_smaller_aggregate(self):
        # Vertex 5 touches aggregate 0 once and aggregate 1 once; aggregate 1 is smaller.
        g = from_edges(6, [(0, 1), (1, 2), (3, 4), (5, 0), (5, 3)])
        labels = np.array([0, 0, 0, 1, 1, -1])
        out = join_by_max_coupling(g, labels, 2)
        assert out[5] == 1

    def test_no_unaggregated_is_noop(self):
        g = path_graph(3)
        labels = np.array([0, 0, 1])
        out = join_by_max_coupling(g, labels, 2)
        assert np.array_equal(out, labels)

    def test_vertex_without_aggregated_neighbor_raises(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        labels = np.array([0, 0, -1, -1])
        with pytest.raises(ValueError):
            join_by_max_coupling(g, labels, 1)

    def test_deterministic_tie_on_label(self):
        # Equal coupling, equal size -> smaller aggregate id wins.
        g = star_graph(2)  # hub 0 with leaves 1, 2
        labels = np.array([-1, 0, 1])
        out = join_by_max_coupling(g, labels, 2)
        assert out[0] == 0

"""Tests for coarse graphs and recursive multilevel coarsening."""

import numpy as np
import pytest

from repro.coarsen import (
    coarse_graph,
    coarsen_recursive,
    mis2_aggregation,
    mis2_basic_aggregation,
)
from repro.graph import grid2d, laplace3d, path_graph


class TestCoarseGraph:
    def test_coarse_graph_adjacency(self):
        g = path_graph(6)
        agg = mis2_basic_aggregation(g)
        cg = coarse_graph(g, agg)
        assert cg.num_vertices == agg.num_aggregates
        assert not cg.has_self_loops()
        # Adjacent fine vertices in different aggregates induce a coarse edge.
        labels = agg.labels
        for u, v in g.iter_edges():
            if labels[u] != labels[v]:
                assert cg.has_edge(int(labels[u]), int(labels[v]))

    def test_incomplete_rejected(self):
        from repro.coarsen import Aggregation

        g = path_graph(3)
        with pytest.raises(ValueError):
            coarse_graph(g, Aggregation(labels=np.array([0, -1, 0]), num_aggregates=1))

    def test_vertex_count_mismatch_rejected(self):
        from repro.coarsen import Aggregation

        with pytest.raises(ValueError):
            coarse_graph(path_graph(3), Aggregation(labels=np.array([0, 0]), num_aggregates=1))


class TestRecursiveCoarsening:
    def test_hierarchy_shrinks_to_target(self):
        g = laplace3d(10, 10, 10)
        hierarchy = coarsen_recursive(g, target_size=50)
        sizes = hierarchy.vertex_counts()
        assert sizes[0] == 1000
        assert sizes[-1] <= 50 or len(sizes) >= 2
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_project_to_finest(self):
        g = grid2d(12, 12)
        hierarchy = coarsen_recursive(g, target_size=10)
        coarse_labels = np.arange(hierarchy.coarsest.num_vertices) % 3
        fine = hierarchy.project_to_finest(coarse_labels)
        assert fine.shape == (g.num_vertices,)
        assert set(np.unique(fine)).issubset({0, 1, 2})

    def test_project_rejects_wrong_length(self):
        g = grid2d(8, 8)
        hierarchy = coarsen_recursive(g, target_size=10)
        with pytest.raises(ValueError):
            hierarchy.project_to_finest(np.zeros(hierarchy.coarsest.num_vertices + 1))

    def test_small_graph_single_level(self):
        g = path_graph(5)
        hierarchy = coarsen_recursive(g, target_size=100)
        assert hierarchy.num_levels == 1
        assert hierarchy.coarsest.num_vertices == 5

    def test_target_validation(self):
        with pytest.raises(ValueError):
            coarsen_recursive(path_graph(5), target_size=0)

    def test_custom_aggregation_function(self):
        g = grid2d(10, 10)
        hierarchy = coarsen_recursive(g, aggregation_fn=mis2_aggregation, target_size=8)
        assert hierarchy.num_levels >= 2

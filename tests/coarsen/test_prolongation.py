"""Tests for prolongation operators and the Galerkin coarse operator."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.coarsen import (
    Aggregation,
    estimate_spectral_radius,
    galerkin_operator,
    mis2_aggregation,
    smoothed_prolongation,
    tentative_prolongation,
)
from repro.graph import from_scipy, laplace2d, laplace3d_matrix


@pytest.fixture
def laplace_and_aggregation():
    A = laplace3d_matrix(8, 8, 8)
    agg = mis2_aggregation(from_scipy(A))
    return A, agg


class TestTentativeProlongation:
    def test_shape_and_partition(self, laplace_and_aggregation):
        _, agg = laplace_and_aggregation
        P = tentative_prolongation(agg)
        assert P.shape == (agg.num_vertices, agg.num_aggregates)
        # Exactly one nonzero per row (piecewise-constant interpolation).
        assert np.all(np.diff(P.indptr) == 1)

    def test_columns_unit_norm(self, laplace_and_aggregation):
        _, agg = laplace_and_aggregation
        P = tentative_prolongation(agg, normalize=True)
        col_norms = np.sqrt(np.asarray(P.multiply(P).sum(axis=0)).ravel())
        assert np.allclose(col_norms, 1.0)

    def test_unnormalized_preserves_constant(self, laplace_and_aggregation):
        _, agg = laplace_and_aggregation
        P = tentative_prolongation(agg, normalize=False)
        ones_coarse = np.ones(agg.num_aggregates)
        assert np.allclose(P @ ones_coarse, 1.0)

    def test_incomplete_aggregation_rejected(self):
        bad = Aggregation(labels=np.array([0, -1]), num_aggregates=1)
        with pytest.raises(ValueError):
            tentative_prolongation(bad)


class TestSpectralRadius:
    def test_dinv_a_radius_of_laplacian_close_to_two(self):
        A = laplace2d(20, 20)
        rho = estimate_spectral_radius(A, iterations=30)
        assert 1.5 <= rho <= 2.05

    def test_deterministic(self):
        A = laplace2d(10, 10)
        assert estimate_spectral_radius(A) == estimate_spectral_radius(A)


class TestSmoothedProlongation:
    def test_shapes(self, laplace_and_aggregation):
        A, agg = laplace_and_aggregation
        P, P_tent = smoothed_prolongation(A, agg)
        assert P.shape == P_tent.shape
        assert P.nnz >= P_tent.nnz  # smoothing widens the stencil

    def test_explicit_omega(self, laplace_and_aggregation):
        A, agg = laplace_and_aggregation
        P_zero, P_tent = smoothed_prolongation(A, agg, omega=0.0)
        assert abs(P_zero - P_tent).max() == 0


class TestGalerkin:
    def test_coarse_operator_spd_structure(self, laplace_and_aggregation):
        A, agg = laplace_and_aggregation
        P, _ = smoothed_prolongation(A, agg)
        Ac = galerkin_operator(A, P)
        assert Ac.shape == (agg.num_aggregates, agg.num_aggregates)
        assert abs(Ac - Ac.T).max() < 1e-10
        # SPD-ness: the coarse Rayleigh quotient of a random vector is non-negative.
        rng = np.random.default_rng(0)
        x = rng.random(Ac.shape[0])
        assert x @ (Ac @ x) >= -1e-10

    def test_shape_validation(self):
        A = laplace2d(4, 4)
        with pytest.raises(ValueError):
            galerkin_operator(A, sp.identity(3, format="csr"))
        with pytest.raises(ValueError):
            galerkin_operator(sp.csr_matrix(np.ones((2, 3))), sp.identity(3, format="csr"))

"""Tests shared across the four aggregation algorithms (Algorithm 2, Algorithm 3,
D2C-based, and the serial baseline)."""

import numpy as np
import pytest

from repro.coarsen import (
    aggregate_quality,
    d2c_aggregation,
    mis2_aggregation,
    mis2_basic_aggregation,
    serial_aggregation,
)
from repro.graph import connected_components, empty_graph, grid2d, induced_subgraph, star_graph
from repro.mis import kk_mis2

ALGORITHMS = {
    "mis2_basic": mis2_basic_aggregation,
    "mis2_agg": mis2_aggregation,
    "d2c": d2c_aggregation,
    "serial": serial_aggregation,
}


@pytest.fixture(params=sorted(ALGORITHMS), ids=sorted(ALGORITHMS))
def aggregation_fn(request):
    return ALGORITHMS[request.param]


class TestCommonInvariants:
    def test_complete_and_dense_labels(self, aggregation_fn, nonempty_small_graph):
        agg = aggregation_fn(nonempty_small_graph)
        assert agg.is_complete()
        assert agg.labels.size == nonempty_small_graph.num_vertices
        used = np.unique(agg.labels)
        assert used.size == agg.num_aggregates
        assert used.min() == 0 and used.max() == agg.num_aggregates - 1

    def test_aggregates_are_connected(self, aggregation_fn, nonempty_small_graph):
        agg = aggregation_fn(nonempty_small_graph)
        for members in agg.aggregate_lists():
            sub, _ = induced_subgraph(nonempty_small_graph, members)
            n_comp, _ = connected_components(sub)
            assert n_comp == 1

    def test_structured_graph_coarsening_factor(self, aggregation_fn, small_laplace3d):
        agg = aggregation_fn(small_laplace3d)
        quality = aggregate_quality(agg)
        # Aggregates built from a vertex plus (a subset of) its neighbours should
        # shrink the graph substantially but not absurdly.
        assert 2.0 <= quality.coarsening_factor <= 40.0

    def test_empty_graph(self, aggregation_fn):
        agg = aggregation_fn(empty_graph(0))
        assert agg.num_aggregates == 0
        assert agg.is_complete()

    def test_deterministic(self, aggregation_fn, small_laplace3d):
        a = aggregation_fn(small_laplace3d)
        b = aggregation_fn(small_laplace3d)
        assert np.array_equal(a.labels, b.labels)
        assert a.num_aggregates == b.num_aggregates


class TestAlgorithmSpecific:
    def test_basic_uses_one_aggregate_per_root(self, small_laplace3d):
        mis = kk_mis2(small_laplace3d)
        agg = mis2_basic_aggregation(small_laplace3d, mis=mis)
        assert agg.num_aggregates == mis.size
        # Every root belongs to its own aggregate.
        assert np.array_equal(agg.labels[mis.in_set], np.arange(mis.size))

    def test_mis2_agg_creates_secondary_aggregates(self, small_laplace3d):
        basic = mis2_basic_aggregation(small_laplace3d)
        full = mis2_aggregation(small_laplace3d)
        # Phase 2 adds aggregates beyond the primary MIS-2 roots.
        assert full.num_aggregates > basic.num_aggregates
        assert full.phase_vertex_counts["phase2"] > 0

    def test_mis2_agg_better_aggregate_shape_than_basic(self, medium_laplace3d):
        # Algorithm 3 exists because Algorithm 2 yields irregular, oversized
        # aggregates on structured problems: its phase-2/phase-3 structure bounds the
        # largest aggregate and produces a finer, more regular coarsening.
        basic_q = aggregate_quality(mis2_basic_aggregation(medium_laplace3d))
        full_q = aggregate_quality(mis2_aggregation(medium_laplace3d))
        assert full_q.max_size < basic_q.max_size
        assert full_q.num_aggregates > basic_q.num_aggregates
        assert full_q.singletons == 0

    def test_mis2_agg_respects_min_secondary_neighbors(self, small_laplace3d):
        strict = mis2_aggregation(small_laplace3d, min_secondary_neighbors=4)
        loose = mis2_aggregation(small_laplace3d, min_secondary_neighbors=1)
        assert loose.num_aggregates >= strict.num_aggregates

    def test_d2c_star(self):
        agg = d2c_aggregation(star_graph(6))
        assert agg.is_complete()
        assert agg.num_aggregates == 1

    def test_serial_phases_recorded(self, small_laplace3d):
        agg = serial_aggregation(small_laplace3d)
        counts = agg.phase_vertex_counts
        assert counts["phase1"] > 0
        assert sum(counts.values()) == small_laplace3d.num_vertices

    def test_precomputed_mis_reused(self, small_laplace3d):
        mis = kk_mis2(small_laplace3d)
        a = mis2_aggregation(small_laplace3d, mis=mis)
        b = mis2_aggregation(small_laplace3d)
        assert np.array_equal(a.labels, b.labels)


class TestQualityMetrics:
    def test_quality_requires_complete(self):
        from repro.coarsen import Aggregation

        with pytest.raises(ValueError):
            aggregate_quality(Aggregation(labels=np.array([0, -1]), num_aggregates=1))

    def test_quality_statistics(self, small_laplace3d):
        agg = mis2_aggregation(small_laplace3d)
        q = aggregate_quality(agg)
        assert q.num_vertices == small_laplace3d.num_vertices
        assert q.num_aggregates == agg.num_aggregates
        assert q.min_size <= q.mean_size <= q.max_size
        assert q.mean_size == pytest.approx(q.num_vertices / q.num_aggregates)
        assert q.as_dict()["singletons"] == q.singletons

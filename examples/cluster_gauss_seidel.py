#!/usr/bin/env python
"""Use case 2 (paper Section VI-G): cluster multicolor Gauss-Seidel preconditioning.

Preconditions GMRES with three flavours of symmetric Gauss-Seidel on an elasticity-like
system — classical (sequential), point multicolor, and Algorithm 4's cluster multicolor
built on MIS-2 aggregation — and reports setup time, iterations and solve time, a
miniature version of the paper's Table VI.

Run with:  python examples/cluster_gauss_seidel.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph import elasticity3d_matrix
from repro.gs import ClusterMulticolorGaussSeidel, MulticolorGaussSeidel, PointGaussSeidel
from repro.solvers import gmres
from repro.util import Table


def main() -> None:
    A = elasticity3d_matrix(8, 8, 8, dofs_per_node=3)
    b = np.ones(A.shape[0])
    print(f"elasticity-like system: {A.shape[0]} unknowns, {A.nnz} nonzeros")

    # Build the three preconditioners (setup is timed inside the multicolor classes).
    classical = PointGaussSeidel(A, symmetric=True)
    point = MulticolorGaussSeidel(A, symmetric=True)
    cluster = ClusterMulticolorGaussSeidel(A, symmetric=True)
    print(f"point multicolor: {point.num_colors} colors on the fine graph "
          f"({A.shape[0]} rows)")
    print(f"cluster multicolor: {cluster.aggregation.num_aggregates} clusters, "
          f"{cluster.num_colors} colors on the coarse graph "
          f"({cluster.coarse.num_vertices} vertices)")

    table = Table(
        ["preconditioner", "setup (s)", "GMRES iters", "solve (s)", "converged"],
        title="GMRES with symmetric Gauss-Seidel preconditioning (tolerance 1e-8)",
    )
    cases = [
        ("classical SGS (sequential)", None, classical),
        ("point multicolor SGS", point.setup_seconds, point),
        ("cluster multicolor SGS (Alg. 4)", cluster.setup_seconds, cluster),
    ]
    for name, setup_seconds, precond in cases:
        start = time.perf_counter()
        result = gmres(A, b, M=precond.as_preconditioner(), tol=1e-8, maxiter=800)
        solve_seconds = time.perf_counter() - start
        table.add_row(
            [
                name,
                round(setup_seconds, 4) if setup_seconds is not None else "-",
                result.iterations,
                round(solve_seconds, 3),
                result.converged,
            ]
        )
    print(table.render())


if __name__ == "__main__":
    main()

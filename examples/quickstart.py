#!/usr/bin/env python
"""Quickstart: compute a distance-2 maximal independent set and coarsen a graph.

This walks through the paper's core pipeline on a small 3-D Laplace problem:

1. build a graph (the 7-point-stencil Laplace3D problem the paper uses),
2. run Algorithm 1 (`kk_mis2`) and verify the result,
3. compare against the Bell/CUSP baseline,
4. build the Algorithm 3 aggregation from the MIS-2 and inspect its quality,
5. predict what the run would cost on the paper's four architectures.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.coarsen import aggregate_quality, mis2_aggregation
from repro.graph import degree_statistics, laplace3d
from repro.mis import bell_mis, kk_mis2, verify_mis
from repro.parallel import device_names, predict_device_time
from repro.util import Table


def main() -> None:
    # 1. A 30x30x30 7-point-stencil grid (27k vertices).
    graph = laplace3d(30, 30, 30)
    stats = degree_statistics(graph)
    print(f"graph: {stats.num_vertices} vertices, {stats.num_edge_slots} edge slots, "
          f"avg degree {stats.average_degree:.2f}, max degree {stats.max_degree}")

    # 2. Algorithm 1: deterministic distance-2 MIS with all four optimizations.
    result = kk_mis2(graph)
    assert verify_mis(graph, result.in_set, k=2), "MIS-2 verification failed"
    print(f"MIS-2: {result.size} vertices "
          f"({100.0 * result.size / stats.num_vertices:.1f}% of the graph) "
          f"in {result.iterations} iterations")

    # 3. The Bell/Dalton/Olson baseline (what CUSP and ViennaCL implement).
    baseline = bell_mis(graph, k=2)
    print(f"Bell baseline: {baseline.size} vertices in {baseline.iterations} iterations, "
          f"{baseline.traffic.total_bytes / result.traffic.total_bytes:.1f}x more memory traffic")

    # 4. Algorithm 3 aggregation seeded by the MIS-2.
    aggregation = mis2_aggregation(graph, mis=result)
    quality = aggregate_quality(aggregation)
    print(f"aggregation: {quality.num_aggregates} aggregates, "
          f"mean size {quality.mean_size:.2f}, max size {quality.max_size}, "
          f"{quality.singletons} singletons")

    # 5. Predicted cost of the MIS-2 on the paper's four architectures.
    table = Table(["device", "predicted time (ms)"], title="Roofline-model predictions")
    for key in device_names():
        table.add_row([key, predict_device_time(result.traffic, key) * 1e3])
    print()
    print(table.render())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Reproduce the paper's Fig. 1 worked example of Algorithm 1.

Runs the traced reference implementation of Algorithm 1 on the 6-vertex example graph
and prints, for every phase of every iteration, each vertex's status and its packed
``T`` / ``M`` tuples — the same information the figure annotates on each node.

Run with:  python examples/worked_example.py
"""

from __future__ import annotations

from repro.graph import paper_example_graph
from repro.mis import trace_mis2, verify_mis


def main() -> None:
    graph = paper_example_graph()
    print("Fig. 1 example graph (paper vertex i corresponds to vertex i-1 here):")
    for v in range(graph.num_vertices):
        neighbors = ", ".join(str(int(w)) for w in graph.neighbors(v))
        print(f"  vertex {v}: neighbors [{neighbors}]")
    print()

    result, snapshots = trace_mis2(graph)
    for snapshot in snapshots:
        print(snapshot.describe())
        print()

    print(f"algorithm terminated after {result.iterations} iterations")
    print(f"MIS-2 = {sorted(result.in_set.tolist())} "
          f"(the paper's {{1, 4}} in its 1-based numbering)")
    assert verify_mis(graph, result.in_set, k=2)


if __name__ == "__main__":
    main()

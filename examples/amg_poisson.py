#!/usr/bin/env python
"""Use case 1 (paper Section VI-F): smoothed-aggregation AMG with MIS-2 aggregation.

Solves a 3-D Poisson problem with CG preconditioned by an SA-AMG V-cycle, swapping
the aggregation scheme between Algorithm 2 ("MIS2 Basic"), Algorithm 3 ("MIS2 Agg")
and the serial baseline — a miniature version of the paper's Table V experiment.

Run with:  python examples/amg_poisson.py [grid_size]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.coarsen import mis2_aggregation, mis2_basic_aggregation, serial_aggregation
from repro.graph import laplace3d_matrix
from repro.solvers import build_hierarchy, pcg
from repro.util import Table


def main(grid: int = 24) -> None:
    A = laplace3d_matrix(grid, grid, grid)
    rng = np.random.default_rng(0)
    x_exact = rng.random(A.shape[0])
    b = A @ x_exact
    print(f"Poisson problem: {A.shape[0]} unknowns, {A.nnz} nonzeros")

    schemes = [
        ("MIS2 Agg (Algorithm 3)", mis2_aggregation),
        ("MIS2 Basic (Algorithm 2)", mis2_basic_aggregation),
        ("Serial Agg (MueLu baseline)", serial_aggregation),
    ]
    table = Table(
        ["aggregation", "levels", "CG iters", "agg time (s)", "setup (s)", "solve (s)", "error"],
        title="SA-AMG preconditioned CG (tolerance 1e-10)",
    )
    for name, fn in schemes:
        hierarchy = build_hierarchy(A, aggregation_fn=fn, aggregation_name=name)
        result = hierarchy.solve(b, tol=1e-10)
        error = float(np.linalg.norm(result.x - x_exact) / np.linalg.norm(x_exact))
        table.add_row(
            [
                name,
                "->".join(str(s) for s in hierarchy.level_sizes()),
                result.iterations,
                round(hierarchy.aggregation_seconds, 4),
                round(hierarchy.setup_seconds, 4),
                round(result.solve_seconds, 4),
                f"{error:.2e}",
            ]
        )
    print(table.render())

    plain = pcg(A, b, tol=1e-10, maxiter=5000)
    print(f"\nUnpreconditioned CG needs {plain.iterations} iterations for the same tolerance.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)

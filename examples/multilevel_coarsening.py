#!/usr/bin/env python
"""Multilevel graph coarsening for partitioning-style workflows.

The paper motivates MIS-2 coarsening with multilevel methods beyond multigrid —
graph partitioning and graph drawing — where the graph is repeatedly coarsened until
it is small, the problem is solved on the coarsest level, and the solution is
projected back. This example coarsens a structured mesh with Algorithm 3, "partitions"
the coarsest graph with a simple spectral-free heuristic, projects the labels back to
the fine mesh, and reports the resulting edge cut and balance per level.

Run with:  python examples/multilevel_coarsening.py
"""

from __future__ import annotations

import numpy as np

from repro.coarsen import coarsen_recursive, mis2_aggregation
from repro.graph import grid2d
from repro.util import Table


def greedy_bisect(graph) -> np.ndarray:
    """Grow one part from vertex 0 by BFS until half the vertices are absorbed."""
    from collections import deque

    n = graph.num_vertices
    part = np.zeros(n, dtype=np.int64)
    target = n // 2
    seen = {0}
    queue = deque([0])
    taken = 0
    while queue and taken < target:
        v = queue.popleft()
        part[v] = 1
        taken += 1
        for w in graph.neighbors(v):
            if int(w) not in seen:
                seen.add(int(w))
                queue.append(int(w))
    return part


def edge_cut(graph, part: np.ndarray) -> int:
    return sum(1 for u, v in graph.iter_edges() if part[u] != part[v])


def main() -> None:
    fine = grid2d(64, 64)
    print(f"fine graph: {fine.num_vertices} vertices, {fine.num_edges} edges")

    hierarchy = coarsen_recursive(fine, aggregation_fn=mis2_aggregation, target_size=80)
    table = Table(["level", "vertices", "edges", "reduction"], title="Coarsening hierarchy")
    prev = None
    for level in hierarchy.levels:
        reduction = "-" if prev is None else f"{prev / level.graph.num_vertices:.2f}x"
        table.add_row([level.level, level.graph.num_vertices, level.graph.num_edges, reduction])
        prev = level.graph.num_vertices
    print(table.render())

    # Partition the coarsest graph and project the labels back to the fine mesh.
    coarse_part = greedy_bisect(hierarchy.coarsest)
    fine_part = hierarchy.project_to_finest(coarse_part)
    sizes = np.bincount(fine_part, minlength=2)
    cut_coarse = edge_cut(hierarchy.coarsest, coarse_part)
    cut_fine = edge_cut(fine, fine_part)
    print(f"\ncoarsest-level bisection: cut {cut_coarse} edges "
          f"on {hierarchy.coarsest.num_vertices} vertices")
    print(f"projected to the fine mesh: cut {cut_fine} of {fine.num_edges} edges "
          f"({100.0 * cut_fine / fine.num_edges:.2f}%), part sizes {sizes.tolist()}")


if __name__ == "__main__":
    main()

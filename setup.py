"""Setuptools entry point for the repro stack.

Kept as a plain ``setup.py`` (no PEP 517 build isolation) so
``pip install -e .`` and ``python setup.py develop`` work in the offline
environments the distributed benchmarks run in, where the ``wheel`` package
may be unavailable.  The ``repro-analysis`` console script exposes the
static contract checker (``python -m repro.analysis``) to pre-commit hooks
and ad-hoc use without PYTHONPATH gymnastics.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Deterministic distributed graph kernels (MIS-2, coloring, "
        "aggregation) with a static contract checker"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-analysis = repro.analysis.__main__:main",
        ],
    },
)

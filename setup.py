"""Setup shim for environments without PEP 517 wheel support.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` / ``python setup.py develop`` in offline
environments where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()

"""Table I: MIS-2 iteration counts for the three priority schemes.

Regenerates the paper's Table I on the 17-matrix suite (synthetic stand-ins) and
benchmarks Algorithm 1 with its production xorshift* priorities on a representative
matrix.
"""

from conftest import emit, emit_result

from repro.bench import get_experiment, table1_table
from repro.bench.config import cached_suite_graph
from repro.mis import kk_mis2


def test_table1_report(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: get_experiment("table1").run(bench_config), rounds=1, iterations=1
    )
    rows = result.rows
    emit(results_dir, "table1_priorities", table1_table(rows).render())
    emit_result(results_dir, result)
    assert len(rows) == 17
    # Shape check: the xorshift* scheme never needs (much) more iterations than the
    # fixed-priority scheme, on any matrix.
    assert all(r.xorstar <= r.fixed + 2 for r in rows)


def test_benchmark_kk_mis2_xorstar(benchmark, bench_config):
    graph = cached_suite_graph("ecology2", bench_config.scale, bench_config.seed, None)
    result = benchmark(lambda: kk_mis2(graph))
    assert result.size > 0

"""Fig. 2: cumulative speedups of the four algorithmic optimizations over the Bell
baseline, per matrix, with geometric means."""

from conftest import emit

from repro.bench import PAPER_FIG2_MEANS, fig2_geometric_means, fig2_table, run_fig2
from repro.bench.config import cached_suite_graph
from repro.mis import run_optimization_level


def test_fig2_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_fig2(bench_config), rounds=1, iterations=1)
    model_table = fig2_table(rows, use_model=True).render()
    python_table = fig2_table(rows, use_model=False).render()
    emit(results_dir, "fig2_optimizations_model", model_table)
    emit(results_dir, "fig2_optimizations_python", python_table)
    means = fig2_geometric_means(rows, use_model=True)
    # Shape: the full optimization stack is several times faster than the baseline in
    # the V100 model (the paper reports 8.97x), and each cumulative level at least
    # does not regress relative to the broad trend.
    assert means["simd"] > 2.0
    assert means["simd"] >= means["random_priority"]
    assert set(PAPER_FIG2_MEANS) <= set(means)
    python_means = fig2_geometric_means(rows, use_model=False)
    # The optimizations also pay off in plain Python wall-clock.
    assert python_means["simd"] > 1.5


def test_benchmark_baseline_level(benchmark, bench_config):
    graph = cached_suite_graph("thermal2", bench_config.scale, bench_config.seed, None)
    result = benchmark(lambda: run_optimization_level(graph, "baseline"))
    assert result.size > 0


def test_benchmark_full_optimization_level(benchmark, bench_config):
    graph = cached_suite_graph("thermal2", bench_config.scale, bench_config.seed, None)
    result = benchmark(lambda: run_optimization_level(graph, "simd"))
    assert result.size > 0

"""Fig. 4: strong-scaling efficiency of MIS-2 on the dual-socket Intel Skylake CPU."""

from conftest import emit

from repro.bench import run_scaling, scaling_table
from repro.bench.config import cached_suite_graph
from repro.mis import kk_mis2
from repro.parallel import strong_scaling_times
from repro.util import geometric_mean


def test_fig4_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_scaling("skylake", bench_config), rounds=1, iterations=1)
    emit(results_dir, "fig4_scaling_intel", scaling_table(rows).render())
    speedups = [row.speedup_at(48) for row in rows]
    mean_speedup = geometric_mean(speedups)
    # Paper: 26.9x geometric-mean speedup on the 48 physical cores; and using all 96
    # hyperthreads is slower than 48 cores.
    assert 18 <= mean_speedup <= 36
    for row in rows:
        assert row.times[row.thread_counts.index(96)] > row.times[row.thread_counts.index(48)]


def test_benchmark_scaling_model(benchmark, bench_config):
    graph = cached_suite_graph("thermal2", bench_config.scale, bench_config.seed, None)
    traffic = kk_mis2(graph).traffic
    times = benchmark(lambda: strong_scaling_times(traffic, "skylake", list(range(1, 97))))
    assert len(times) == 96

"""Table VI: point vs cluster multicolor symmetric Gauss-Seidel preconditioning GMRES."""

from conftest import emit

from repro.bench import BenchConfig, run_table6, table6_table
from repro.bench.config import cached_suite_matrix
from repro.gs import ClusterMulticolorGaussSeidel


def test_table6_report(benchmark, bench_config, results_dir):
    config = BenchConfig(scale=max(bench_config.scale, 0.02), trials=1, warmup=0)
    rows = benchmark.pedantic(lambda: run_table6(config, tol=1e-8, maxiter=800), rounds=1, iterations=1)
    emit(results_dir, "table6_cluster_gs", table6_table(rows).render())
    assert len(rows) == 5
    for row in rows:
        # Both preconditioned solves converge within the iteration budget and with an
        # iteration count in the same ballpark (the paper reports the cluster method
        # ~5% better; see EXPERIMENTS.md for why the Python point baseline is stronger
        # than the paper's).
        assert row.point_converged and row.cluster_converged
        assert row.cluster_iterations <= 2 * row.point_iterations
        assert row.point_setup_seconds > 0 and row.cluster_setup_seconds > 0


def test_benchmark_cluster_gs_setup(benchmark, bench_config):
    A = cached_suite_matrix("Laplace3D_100", bench_config.scale, bench_config.seed, None)
    gs = benchmark(lambda: ClusterMulticolorGaussSeidel(A))
    assert gs.aggregation.is_complete()

"""Table IV: MIS-2 quality (set sizes) of Algorithm 1 vs the CUSP/ViennaCL baseline."""

from conftest import emit

from repro.bench import run_table4, table4_table
from repro.bench.config import cached_suite_graph
from repro.mis import bell_mis


def test_table4_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_table4(bench_config), rounds=1, iterations=1)
    emit(results_dir, "table4_quality", table4_table(rows).render())
    assert len(rows) == 17
    # Table IV's claim: all three implementations produce sets of very similar size.
    # At the scaled-down reproduction sizes the sets are small, so the tolerance is
    # size-aware (a handful of vertices of slack for tiny sets).
    for row in rows:
        assert row.max_relative_spread < max(0.15, 12.0 / max(row.kk, 1))


def test_benchmark_bell_mis2_baseline(benchmark, bench_config):
    graph = cached_suite_graph("ecology2", bench_config.scale, bench_config.seed, None)
    result = benchmark(lambda: bell_mis(graph, k=2))
    assert result.size > 0

"""Table V: SA-AMG preconditioned CG with the five aggregation schemes.

Reproduces the MueLu experiment: the same Laplace3D problem is solved with a V-cycle
SA preconditioner whose aggregation is swapped between the serial baseline, the two
distance-2-coloring schemes, Algorithm 2 and Algorithm 3.
"""

import numpy as np
from conftest import emit

from repro.bench import run_table5, table5_table
from repro.coarsen import mis2_aggregation
from repro.graph import from_scipy, laplace3d_matrix

#: Grid used by the benchmark (the paper uses 100^3; 24^3 keeps the harness fast).
GRID = (24, 24, 24)


def test_table5_report(benchmark, results_dir):
    rows = benchmark.pedantic(lambda: run_table5(grid=GRID), rounds=1, iterations=1)
    emit(results_dir, "table5_muelu", table5_table(rows).render())
    by_name = {r.scheme: r for r in rows}
    assert all(r.converged for r in rows)
    # Shape checks from the paper:
    # (1) MIS2 Agg needs no more CG iterations than MIS2 Basic (paper: 22 vs 49);
    assert by_name["MIS2 Agg"].iterations <= by_name["MIS2 Basic"].iterations
    # (2) MIS2 Agg's aggregation is much faster than the serial host aggregation
    #     (paper: 22x); at reproduction scale we only require a clear win.
    assert by_name["MIS2 Agg"].aggregation_seconds < by_name["Serial Agg"].aggregation_seconds
    # (3) every scheme in this reproduction is deterministic.
    assert all(r.deterministic for r in rows)


def test_benchmark_mis2_aggregation_kernel(benchmark):
    A = laplace3d_matrix(*GRID)
    graph = from_scipy(A)
    agg = benchmark(lambda: mis2_aggregation(graph))
    assert agg.is_complete()

"""Fig. 6: MIS-2 speedup of Algorithm 1 over the CUSP (Bell) baseline."""

from conftest import emit

from repro.bench import run_fig6, speedup_table
from repro.util import geometric_mean


def test_fig6_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_fig6(bench_config), rounds=1, iterations=1)
    emit(results_dir, "fig6_vs_cusp", speedup_table(rows, "Fig. 6: Algorithm 1 vs CUSP (MIS-2)").render())
    assert len(rows) == 17
    # The paper reports 5-7x on every matrix on a V100; the model and the Python
    # wall-clock both show Algorithm 1 winning on every matrix here.
    assert all(r.model_speedup > 1.0 for r in rows)
    assert all(r.python_speedup > 1.0 for r in rows)
    assert geometric_mean([r.model_speedup for r in rows]) > 2.0


def test_benchmark_fig6_single_matrix(benchmark, bench_config):
    from repro.bench import BenchConfig, run_fig6 as run

    tiny = BenchConfig(scale=bench_config.scale, trials=1, warmup=0, matrices=("parabolic_fem",))
    rows = benchmark(lambda: run(tiny))
    assert rows[0].model_speedup > 0

"""Shared configuration for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation section: it runs the corresponding driver from :mod:`repro.bench`, prints
the paper-style table, writes it to ``benchmarks/results/``, and registers a
pytest-benchmark timing for the performance-critical kernel it exercises.

The default configuration is intentionally small (a few percent of the paper's
problem sizes) so the whole harness completes in minutes on two CPU cores; raise
``REPRO_BENCH_SCALE`` to approach the paper's sizes on bigger machines.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import BenchConfig, ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale of the synthetic suite stand-ins used by the benchmarks (fraction of the
#: paper's vertex counts). Override with the REPRO_BENCH_SCALE environment variable.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.005"))


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    """The benchmark-wide configuration (small scale, single timed trial)."""
    return BenchConfig(scale=BENCH_SCALE, trials=1, warmup=0)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under ``benchmarks/results/``."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def emit_result(results_dir: Path, result: ExperimentResult) -> Path:
    """Persist a structured ExperimentResult as a ``BENCH_*.json`` record.

    These JSON records (one per experiment/backend pair) are the perf-trajectory
    feed: CI uploads ``benchmarks/results/*.json`` as an artifact so wall-clock
    and deterministic counts can be tracked across commits.
    """
    return result.save(results_dir)

"""Fig. 7: MIS-2 + coarsening speedup of Algorithm 1 over the ViennaCL (Bell) pipeline."""

from conftest import emit

from repro.bench import run_fig7, speedup_table
from repro.util import geometric_mean


def test_fig7_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_fig7(bench_config), rounds=1, iterations=1)
    emit(
        results_dir,
        "fig7_vs_viennacl",
        speedup_table(rows, "Fig. 7: Algorithm 1 + coarsening vs ViennaCL").render(),
    )
    assert len(rows) == 17
    # Paper: 3-8x speedup on all seventeen matrices.
    assert all(r.model_speedup > 1.0 for r in rows)
    assert geometric_mean([r.model_speedup for r in rows]) > 1.5


def test_benchmark_fig7_single_matrix(benchmark, bench_config):
    from repro.bench import BenchConfig, run_fig7 as run

    tiny = BenchConfig(scale=bench_config.scale, trials=1, warmup=0, matrices=("tmt_sym",))
    rows = benchmark(lambda: run(tiny))
    assert rows[0].model_speedup > 0

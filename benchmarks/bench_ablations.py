"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's own tables: they quantify, on the reproduction's scale,
how each design choice affects the result so a downstream user can judge the
trade-offs.

* priority scheme vs MIS-2 *size* (the paper only reports iteration counts),
* packed-word width (32 vs 64 bits),
* Algorithm 3's ``min_secondary_neighbors`` threshold,
* the SIMD average-degree heuristic (degree >= 16),
* MIS-2 coarsening vs heavy-edge matching inside the multilevel partitioner
  (the paper's stated future-work comparison).
"""

import numpy as np
from conftest import emit

from repro.bench.config import cached_suite_graph
from repro.coarsen import aggregate_quality, mis2_aggregation
from repro.graph import grid2d, laplace3d
from repro.mis import kk_mis2
from repro.partition import heavy_edge_matching, multilevel_bisection
from repro.util import Table


def test_ablation_priority_scheme_vs_quality(benchmark, bench_config, results_dir):
    def run():
        table = Table(["matrix", "scheme", "MIS-2 size", "iterations"],
                      title="Ablation: priority scheme vs MIS-2 size")
        rows = []
        for name in ("ecology2", "Laplace3D_100", "af_shell7"):
            graph = cached_suite_graph(name, bench_config.scale, bench_config.seed, None)
            for scheme in ("fixed", "xor", "xorstar"):
                result = kk_mis2(graph, priority_scheme=scheme)
                table.add_row([name, scheme, result.size, result.iterations])
                rows.append((name, scheme, result.size))
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "ablation_priority_quality", table.render())
    # The scheme affects iterations, not quality: sizes per matrix stay within ~10%.
    by_matrix = {}
    for name, _, size in rows:
        by_matrix.setdefault(name, []).append(size)
    for sizes in by_matrix.values():
        assert max(sizes) - min(sizes) <= max(3, 0.1 * max(sizes))


def test_ablation_word_width(benchmark, results_dir):
    graph = laplace3d(20, 20, 20)

    def run():
        r32 = kk_mis2(graph, word_bits=32)
        r64 = kk_mis2(graph, word_bits=64)
        return r32, r64

    r32, r64 = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["word bits", "MIS-2 size", "iterations", "traffic (bytes)"],
                  title="Ablation: packed-word width")
    table.add_row([32, r32.size, r32.iterations, r32.traffic.total_bytes])
    table.add_row([64, r64.size, r64.iterations, r64.traffic.total_bytes])
    emit(results_dir, "ablation_word_width", table.render())
    # 32-bit words halve the tuple traffic without hurting quality.
    assert r32.traffic.total_bytes < r64.traffic.total_bytes
    assert abs(r32.size - r64.size) <= 0.05 * r64.size


def test_ablation_secondary_neighbor_threshold(benchmark, results_dir):
    graph = laplace3d(16, 16, 16)

    def run():
        return {k: mis2_aggregation(graph, min_secondary_neighbors=k) for k in (1, 2, 4)}

    aggs = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["min secondary neighbors", "aggregates", "mean size", "singletons"],
                  title="Ablation: Algorithm 3 phase-2 threshold")
    for k, agg in aggs.items():
        q = aggregate_quality(agg)
        table.add_row([k, q.num_aggregates, round(q.mean_size, 2), q.singletons])
    emit(results_dir, "ablation_secondary_threshold", table.render())
    # A stricter threshold yields fewer (larger) aggregates.
    assert aggs[4].num_aggregates <= aggs[2].num_aggregates <= aggs[1].num_aggregates


def test_ablation_simd_heuristic(benchmark, bench_config, results_dir):
    low = cached_suite_graph("ecology2", bench_config.scale, bench_config.seed, None)
    high = cached_suite_graph("audikw_1", bench_config.scale, bench_config.seed, None)

    def run():
        return kk_mis2(low), kk_mis2(high)

    r_low, r_high = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["matrix", "avg degree", "SIMD enabled"],
                  title="Ablation: SIMD average-degree heuristic (threshold 16)")
    table.add_row(["ecology2", round(low.average_degree(), 2), r_low.config.simd])
    table.add_row(["audikw_1", round(high.average_degree(), 2), r_high.config.simd])
    emit(results_dir, "ablation_simd_heuristic", table.render())
    assert r_low.config.simd is False
    assert r_high.config.simd is True


def test_ablation_partitioning_coarsener(benchmark, results_dir):
    graph = grid2d(40, 40)

    def run():
        mis2 = multilevel_bisection(graph)
        hem = multilevel_bisection(graph, aggregation_fn=heavy_edge_matching)
        return mis2, hem

    mis2, hem = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["coarsener", "edge cut", "balance", "levels"],
                  title="Ablation: multilevel partitioning with MIS-2 vs HEM coarsening")
    table.add_row(["MIS-2 (Algorithm 3)", mis2.cut, round(mis2.balance, 3), len(mis2.level_sizes)])
    table.add_row(["heavy-edge matching", hem.cut, round(hem.balance, 3), len(hem.level_sizes)])
    emit(results_dir, "ablation_partition_coarsener", table.render())
    # MIS-2 coarsening needs far fewer levels and stays competitive on cut quality
    # (Gilbert et al.'s observation for regular graphs).
    assert len(mis2.level_sizes) < len(hem.level_sizes)
    assert mis2.cut <= 1.5 * hem.cut

"""Table III: MIS-2 size and iteration count on structured problems of growing size."""

from conftest import emit

from repro.bench import run_table3, table3_table
from repro.graph import laplace3d
from repro.mis import kk_mis2


def test_table3_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_table3(bench_config), rounds=1, iterations=1)
    emit(results_dir, "table3_structured_scaling", table3_table(rows).render())
    elasticity = [r for r in rows if r.problem.startswith("Elasticity")]
    laplace = [r for r in rows if r.problem.startswith("Laplace")]
    # MIS-2 size stays proportional to |V| within each family (paper: ~0.7% and ~9%).
    for family in (elasticity, laplace):
        fractions = [r.mis2_fraction for r in family]
        assert max(fractions) / min(fractions) < 2.0
    # Iteration counts grow by only a couple as the problem grows 4-8x.
    assert max(r.iterations for r in laplace) - min(r.iterations for r in laplace) <= 3


def test_benchmark_mis2_on_largest_structured_grid(benchmark):
    graph = laplace3d(34, 34, 34)
    result = benchmark(lambda: kk_mis2(graph))
    assert result.iterations > 0

"""Fig. 3: bandwidth-efficiency profiles of the four architectures."""

from conftest import emit, emit_result

from repro.bench import fig3_table, get_experiment
from repro.bench.config import cached_suite_graph
from repro.mis import kk_mis2
from repro.parallel import bandwidth_efficiency


def test_fig3_report(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: get_experiment("fig3").run(bench_config), rounds=1, iterations=1
    )
    rows = result.rows
    emit(results_dir, "fig3_portability", fig3_table(rows).render())
    emit_result(results_dir, result)
    assert len(rows) == 17
    for row in rows:
        norm = row.normalized()
        assert max(norm.values()) == 1.0
        # Portability claim: no device falls below a small fraction of the best —
        # the algorithm is usable everywhere (the paper's profiles stay above ~0.2).
        assert min(norm.values()) > 0.15


def test_benchmark_efficiency_computation(benchmark, bench_config):
    graph = cached_suite_graph("apache2", bench_config.scale, bench_config.seed, None)
    result = kk_mis2(graph)
    value = benchmark(lambda: bandwidth_efficiency(result.traffic, "v100"))
    assert value > 0

"""Fig. 5: strong-scaling efficiency of MIS-2 on the dual-socket ThunderX2 ARM CPU."""

from conftest import emit

from repro.bench import run_scaling, scaling_table
from repro.bench.config import cached_suite_graph
from repro.mis import kk_mis2
from repro.parallel import strong_scaling_times
from repro.util import geometric_mean


def test_fig5_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_scaling("tx2", bench_config), rounds=1, iterations=1)
    emit(results_dir, "fig5_scaling_arm", scaling_table(rows).render())
    speedups = [row.speedup_at(56) for row in rows]
    mean_speedup = geometric_mean(speedups)
    # Paper: 43.9x geometric-mean speedup on the 56 physical cores; hyperthreads hurt.
    assert 32 <= mean_speedup <= 52
    for row in rows:
        assert row.times[row.thread_counts.index(112)] > row.times[row.thread_counts.index(56)]


def test_benchmark_scaling_model(benchmark, bench_config):
    graph = cached_suite_graph("tmt_sym", bench_config.scale, bench_config.seed, None)
    traffic = kk_mis2(graph).traffic
    times = benchmark(lambda: strong_scaling_times(traffic, "tx2", list(range(1, 113))))
    assert len(times) == 112

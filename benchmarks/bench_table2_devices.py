"""Table II: suite statistics and modelled MIS-2 times on the four architectures."""

from conftest import emit

from repro.bench import run_table2, table2_table
from repro.bench.config import cached_suite_graph
from repro.mis import kk_mis2
from repro.parallel import predict_device_time


def test_table2_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(lambda: run_table2(bench_config), rounds=1, iterations=1)
    emit(results_dir, "table2_devices", table2_table(rows).render())
    assert len(rows) == 17
    for row in rows:
        # At the paper's problem sizes the GPUs beat both CPUs on every matrix.
        assert row.predicted_ms["v100"] < row.predicted_ms["skylake"]
        assert row.predicted_ms["v100"] < row.predicted_ms["tx2"]


def test_benchmark_mis2_with_device_prediction(benchmark, bench_config):
    graph = cached_suite_graph("Laplace3D_100", bench_config.scale, bench_config.seed, None)

    def run():
        result = kk_mis2(graph)
        return predict_device_time(result.traffic, "v100")

    predicted = benchmark(run)
    assert predicted > 0
